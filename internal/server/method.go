package server

import (
	"fmt"

	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/genstore"
	"kfusion/internal/twolayer"
)

// driver binds a fusion method name to the apply chain the generation store
// replays: the same closure folds live appends and journal replay, so a
// restarted server reconstructs the exact generation the crashed one had
// (the genstore + Append contract). check validates a recovered state
// against the server's configuration before any of it is served.
type driver struct {
	name  string
	apply genstore.ApplyFunc
	check func(st *genstore.State) error
}

// newDriver builds the apply chain for cfg. Claim-layer methods flatten
// batches through one ClaimStream (cross-batch dedup), compile-or-append the
// claim graph, and re-fuse warm; twolayer appends the extraction graph and
// warm-starts the two-layer EM. The first batch cold-fuses under the full
// round cap; every later batch runs cfg.WarmRounds rounds of online EM
// seeded from the previous generation's posteriors.
func newDriver(cfg *Config) (*driver, error) {
	switch cfg.Method {
	case "twolayer":
		return newTwoLayerDriver(cfg), nil
	case "vote", "accu", "popaccu", "popaccu+unsup":
		return newClaimDriver(cfg)
	case "popaccu+":
		return nil, fmt.Errorf("server: method popaccu+ needs a gold labeler; the serving write path has none")
	default:
		return nil, fmt.Errorf("server: unknown method %q (want vote, accu, popaccu, popaccu+unsup or twolayer)", cfg.Method)
	}
}

func claimConfig(cfg *Config) (fusion.Config, error) {
	var fc fusion.Config
	switch cfg.Method {
	case "vote":
		fc = fusion.VoteConfig()
	case "accu":
		fc = fusion.AccuConfig()
	case "popaccu":
		fc = fusion.PopAccuConfig()
	case "popaccu+unsup":
		fc = fusion.PopAccuPlusUnsupConfig()
	default:
		return fc, fmt.Errorf("server: %q is not a claim-layer method", cfg.Method)
	}
	if cfg.Granularity != (fusion.Granularity{}) {
		fc.Granularity = cfg.Granularity
	}
	fc.Workers = cfg.Workers
	return fc, nil
}

func newClaimDriver(cfg *Config) (*driver, error) {
	fc, err := claimConfig(cfg)
	if err != nil {
		return nil, err
	}
	warm := fc
	if cfg.WarmRounds > 0 {
		warm.Rounds = cfg.WarmRounds
	}
	// The stream is created lazily on the first apply so a hydrated graph
	// seeds it (SeedClaimStream reconstructs the dedup set from the interned
	// graph), keeping replayed and live dedup identical.
	var stream *fusion.ClaimStream
	apply := func(st *genstore.State, batch []extract.Extraction) error {
		if stream == nil {
			if st.Claim != nil {
				stream = fusion.SeedClaimStream(fc.Granularity, st.Claim)
			} else {
				stream = fusion.NewClaimStream(fc.Granularity)
			}
		}
		claims := stream.Add(batch)
		cold := st.Claim == nil
		if cold {
			c, err := fusion.CompileWorkers(claims, cfg.Workers, 0)
			if err != nil {
				return err
			}
			st.Claim = c
		} else {
			c, err := st.Claim.Append(claims)
			if err != nil {
				return err
			}
			st.Claim = c
		}
		runCfg := warm
		if cold {
			runCfg = fc // first batch: full cold fuse
		}
		res, err := st.Claim.FuseWarm(runCfg, st.Result)
		if err != nil {
			return err
		}
		st.Method = cfg.Method
		st.Gran = fc.Granularity
		st.Result = res
		return nil
	}
	check := func(st *genstore.State) error {
		if st.Method != "" && st.Method != cfg.Method {
			return fmt.Errorf("server: state directory holds method %q, serving %q", st.Method, cfg.Method)
		}
		if st.Claim != nil && st.Gran != fc.Granularity {
			return fmt.Errorf("server: state directory holds granularity %s, serving %s", st.Gran, fc.Granularity)
		}
		return nil
	}
	return &driver{name: cfg.Method, apply: apply, check: check}, nil
}

func newTwoLayerDriver(cfg *Config) *driver {
	tc := twolayer.DefaultConfig()
	tc.SiteLevel = cfg.SiteLevel
	tc.Workers = cfg.Workers
	warm := tc
	if cfg.WarmRounds > 0 {
		warm.Rounds = cfg.WarmRounds
	}
	apply := func(st *genstore.State, batch []extract.Extraction) error {
		cold := st.Ext == nil
		if cold {
			st.Ext = extract.CompileWorkers(batch, tc.SiteLevel, cfg.Workers)
		} else {
			st.Ext = st.Ext.Append(batch)
		}
		runCfg := warm
		if cold {
			runCfg = tc
		}
		res, tl, err := twolayer.FuseCompiledWarm(st.Ext, runCfg, st.TL)
		if err != nil {
			return err
		}
		st.Method = "twolayer"
		st.SiteLevel = tc.SiteLevel
		st.Result = res
		st.TL = tl
		return nil
	}
	check := func(st *genstore.State) error {
		if st.Method != "" && st.Method != "twolayer" {
			return fmt.Errorf("server: state directory holds method %q, serving %q", st.Method, "twolayer")
		}
		if st.Ext != nil && st.SiteLevel != tc.SiteLevel {
			return fmt.Errorf("server: state directory holds site-level=%v, serving site-level=%v", st.SiteLevel, tc.SiteLevel)
		}
		return nil
	}
	return &driver{name: "twolayer", apply: apply, check: check}
}
