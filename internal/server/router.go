package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"kfusion/internal/httpapi"
)

// apiFunc is the shape of every route handler: produce a payload or an
// error, and let the router own serialization, status mapping and logging.
// The ResponseWriter is passed only for body plumbing (MaxBytesReader);
// handlers never write to it directly.
type apiFunc func(w http.ResponseWriter, r *http.Request) (any, error)

// statusError overrides the status a typed error would normally map to
// (e.g. an oversized append body is ErrBadBatch on the wire but 413, not
// 400).
type statusError struct {
	status int
	err    error
}

func (e *statusError) Error() string { return e.err.Error() }
func (e *statusError) Unwrap() error { return e.err }

// newRouter mounts the httpapi route table on a Go 1.22 pattern mux. One
// table row per route; the catch-all turns unknown paths into the same JSON
// error shape as every other failure. Patterns match the escaped request
// path, so item ids with embedded '/' (path-escaped by httpapi.ItemPath)
// arrive as one {id} segment and PathValue hands back the decoded id.
func newRouter(s *Server) http.Handler {
	mux := http.NewServeMux()
	for _, r := range []struct {
		pattern string
		handler apiFunc
	}{
		{"GET " + httpapi.PathHealthz, s.handleHealthz},
		{"GET " + httpapi.PathReadyz, s.handleReadyz},
		{"GET " + httpapi.PathStatus, s.handleStatus},
		{"GET " + httpapi.PathItems + "{id}", s.handleItem},
		{"GET " + httpapi.PathTriples, s.handleTriples},
		{"POST " + httpapi.PathAppend, s.handleAppend},
	} {
		mux.Handle(r.pattern, s.serve(r.handler))
	}
	mux.Handle("/", s.serve(func(_ http.ResponseWriter, r *http.Request) (any, error) {
		return nil, fmt.Errorf("%w: no route %s %s", httpapi.ErrNotFound, r.Method, r.URL.Path)
	}))
	return mux
}

// serve adapts an apiFunc to http.Handler: JSON-encode the payload on
// success, map the error to (status, ErrorResponse) on failure.
func (s *Server) serve(h apiFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		payload, err := h(w, r)
		if err != nil {
			status := statusForError(err)
			if status == http.StatusInternalServerError {
				s.logf("%s %s failed: %v", r.Method, r.URL.Path, err)
			}
			writeJSON(w, status, &httpapi.ErrorResponse{
				Code:    httpapi.CodeForError(err),
				Message: err.Error(),
			})
			return
		}
		writeJSON(w, http.StatusOK, payload)
	})
}

// statusForError maps a (possibly wrapped) typed error to its HTTP status.
// A statusError in the chain wins; otherwise the sentinel decides.
func statusForError(err error) int {
	var se *statusError
	if errors.As(err, &se) {
		return se.status
	}
	switch {
	case errors.Is(err, httpapi.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, httpapi.ErrBadBatch), errors.Is(err, httpapi.ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, httpapi.ErrNotReady):
		return http.StatusServiceUnavailable
	case errors.Is(err, httpapi.ErrBusy):
		return http.StatusConflict
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, status int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encode failures past WriteHeader are wire errors the peer sees as a
	// truncated body; nothing useful to do server-side.
	_ = json.NewEncoder(w).Encode(payload)
}
