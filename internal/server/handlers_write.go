package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"kfusion/internal/httpapi"
)

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) (any, error) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	var req httpapi.AppendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, &statusError{
				status: http.StatusRequestEntityTooLarge,
				err:    fmt.Errorf("%w: body exceeds %d bytes", httpapi.ErrBadBatch, s.cfg.MaxBody),
			}
		}
		return nil, fmt.Errorf("%w: invalid JSON: %v", httpapi.ErrBadBatch, err)
	}
	batch, err := httpapi.ToBatch(req.Extractions)
	if err != nil {
		return nil, err
	}
	return s.Append(batch)
}
