package server

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"kfusion/internal/httpapi"
)

// defaultTriplesLimit caps an unlimited /v1/triples page; Total still counts
// every match, so truncation is visible to the caller.
const defaultTriplesLimit = 1000

func (s *Server) handleHealthz(_ http.ResponseWriter, _ *http.Request) (any, error) {
	return &httpapi.HealthResponse{Status: "ok"}, nil
}

func (s *Server) handleReadyz(_ http.ResponseWriter, _ *http.Request) (any, error) {
	v, err := s.view()
	if err != nil {
		return nil, err
	}
	return &httpapi.ReadyResponse{Ready: true, Generation: v.generation}, nil
}

func (s *Server) handleStatus(_ http.ResponseWriter, _ *http.Request) (any, error) {
	return s.Status(), nil
}

func (s *Server) handleItem(_ http.ResponseWriter, r *http.Request) (any, error) {
	id := r.PathValue("id")
	subject, predicate, ok := strings.Cut(id, "#")
	if !ok || subject == "" || predicate == "" {
		return nil, fmt.Errorf("%w: item id %q is not subject#predicate", httpapi.ErrBadRequest, id)
	}
	v, err := s.view()
	if err != nil {
		return nil, err
	}
	resp, ok := v.item(subject, predicate)
	if !ok {
		return nil, fmt.Errorf("%w: no fused value for item %q in generation %d", httpapi.ErrNotFound, id, v.generation)
	}
	return resp, nil
}

func (s *Server) handleTriples(_ http.ResponseWriter, r *http.Request) (any, error) {
	v, err := s.view()
	if err != nil {
		return nil, err
	}
	q := r.URL.Query()
	minProb := -1.0 // include unpredicted rows (probability -1) by default
	if raw := q.Get("min_prob"); raw != "" {
		minProb, err = strconv.ParseFloat(raw, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: min_prob %q is not a number", httpapi.ErrBadRequest, raw)
		}
	}
	limit := defaultTriplesLimit
	if raw := q.Get("limit"); raw != "" {
		limit, err = strconv.Atoi(raw)
		if err != nil || limit < 0 {
			return nil, fmt.Errorf("%w: limit %q is not a non-negative integer", httpapi.ErrBadRequest, raw)
		}
	}
	return v.triplesQuery(q.Get("subject"), q.Get("predicate"), minProb, limit), nil
}
