package hierval

import (
	"math"
	"testing"

	"kfusion/internal/fusion"
	"kfusion/internal/kb"
)

func locTriple(subj string, loc kb.EntityID, prob float64) fusion.FusedTriple {
	return fusion.FusedTriple{
		Triple:      kb.Triple{Subject: kb.EntityID(subj), Predicate: "/p/birth_place", Object: kb.EntityObject(loc)},
		Probability: prob,
		Predicted:   true,
	}
}

func buildHier() *kb.Hierarchy {
	h := kb.NewHierarchy()
	h.SetParent("sf", "ca")
	h.SetParent("la", "ca")
	h.SetParent("ca", "usa")
	h.SetParent("nyc", "ny")
	h.SetParent("ny", "usa")
	return h
}

func isHier(p kb.PredicateID) bool { return p == "/p/birth_place" }

func TestCitiesSupportState(t *testing.T) {
	// The paper's motivating case: several Californian cities claimed for
	// one item — each individually weak, CA collectively strong.
	h := buildHier()
	res := &fusion.Result{Triples: []fusion.FusedTriple{
		locTriple("s", "sf", 0.4),
		locTriple("s", "la", 0.4),
		locTriple("s", "ca", 0.1),
	}}
	out := Adjust(res, h, isHier)
	var ca float64
	for _, f := range out.Triples {
		if obj, _ := f.Triple.Object.Entity(); obj == "ca" {
			ca = f.Probability
		}
	}
	// 1 - (1-0.4)(1-0.4)(1-0.1) = 0.676
	if math.Abs(ca-0.676) > 1e-9 {
		t.Errorf("CA aggregated = %v, want 0.676", ca)
	}
	// City probabilities unchanged (no descendants).
	for _, f := range out.Triples {
		if obj, _ := f.Triple.Object.Entity(); obj == "sf" && f.Probability != 0.4 {
			t.Errorf("SF changed: %v", f.Probability)
		}
	}
}

func TestUnrelatedBranchUnaffected(t *testing.T) {
	h := buildHier()
	res := &fusion.Result{Triples: []fusion.FusedTriple{
		locTriple("s", "sf", 0.8),
		locTriple("s", "nyc", 0.1),
	}}
	out := Adjust(res, h, isHier)
	for _, f := range out.Triples {
		obj, _ := f.Triple.Object.Entity()
		if obj == "nyc" && f.Probability != 0.1 {
			t.Errorf("NYC boosted by SF evidence: %v", f.Probability)
		}
	}
}

func TestNonHierPredicateUntouched(t *testing.T) {
	h := buildHier()
	res := &fusion.Result{Triples: []fusion.FusedTriple{
		{Triple: kb.Triple{Subject: "s", Predicate: "/p/other", Object: kb.EntityObject("sf")}, Probability: 0.3, Predicted: true},
	}}
	out := Adjust(res, h, isHier)
	if out.Triples[0].Probability != 0.3 {
		t.Errorf("non-hierarchical predicate adjusted: %v", out.Triples[0].Probability)
	}
}

func TestNeverDecreases(t *testing.T) {
	h := buildHier()
	res := &fusion.Result{Triples: []fusion.FusedTriple{
		locTriple("s", "usa", 0.9),
		locTriple("s", "sf", 0.05),
	}}
	out := Adjust(res, h, isHier)
	for i, f := range out.Triples {
		if f.Probability < res.Triples[i].Probability {
			t.Errorf("Adjust lowered %v: %v -> %v", f.Triple, res.Triples[i].Probability, f.Probability)
		}
	}
}

func TestInputNotMutated(t *testing.T) {
	h := buildHier()
	res := &fusion.Result{Triples: []fusion.FusedTriple{
		locTriple("s", "sf", 0.5),
		locTriple("s", "ca", 0.2),
	}}
	Adjust(res, h, isHier)
	if res.Triples[1].Probability != 0.2 {
		t.Error("Adjust mutated its input")
	}
}

func TestConeSupport(t *testing.T) {
	h := buildHier()
	res := &fusion.Result{Triples: []fusion.FusedTriple{
		locTriple("s", "sf", 0.5),
		locTriple("s", "la", 0.5),
		locTriple("s", "nyc", 0.5),
	}}
	item := kb.DataItem{Subject: "s", Predicate: "/p/birth_place"}
	ca := ConeSupport(res, h, item, "ca")
	if math.Abs(ca-0.75) > 1e-9 {
		t.Errorf("ConeSupport(ca) = %v, want 0.75", ca)
	}
	usa := ConeSupport(res, h, item, "usa")
	if math.Abs(usa-0.875) > 1e-9 {
		t.Errorf("ConeSupport(usa) = %v, want 0.875", usa)
	}
	if got := ConeSupport(res, h, item, "sf"); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("ConeSupport(sf) = %v, want 0.5", got)
	}
}
