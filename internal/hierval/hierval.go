// Package hierval implements the paper's §5.4 future direction: reasoning
// over hierarchical value spaces. "A triple with object CA partially
// supports that San Francisco is a true object ... if several cities in CA
// are provided as conflicting values for a data item, although we may
// predict a low probability for each of these cities, we may predict a high
// probability for CA."
//
// Adjust aggregates fused probabilities up the containment hierarchy for
// hierarchical predicates: the adjusted probability of a value is the
// probability that at least one of its descendants (or itself) is true,
// approximated under independence. This repairs the paper's second
// false-negative class — specific/general values (35% of FNs, Figure 17).
package hierval

import (
	"kfusion/internal/fusion"
	"kfusion/internal/kb"
)

// Adjust returns a copy of res where, for hierarchical predicates, each
// entity value's probability is raised to the aggregated support of its
// descendant cone: p'(v) = 1 - Π_{v' ⊑ v}(1 - p(v')). Non-hierarchical
// predicates and non-entity values pass through unchanged.
//
// isHier reports whether a predicate's values live in the hierarchy h.
func Adjust(res *fusion.Result, h *kb.Hierarchy, isHier func(kb.PredicateID) bool) *fusion.Result {
	out := &fusion.Result{
		Rounds:       res.Rounds,
		ProvAccuracy: res.ProvAccuracy,
		Unpredicted:  res.Unpredicted,
		Triples:      make([]fusion.FusedTriple, len(res.Triples)),
	}
	copy(out.Triples, res.Triples)

	// Group hierarchical-predicate triples by data item.
	type entry struct {
		idx int
		obj kb.EntityID
	}
	byItem := map[kb.DataItem][]entry{}
	for i, f := range res.Triples {
		if !f.Predicted || !isHier(f.Triple.Predicate) {
			continue
		}
		if obj, ok := f.Triple.Object.Entity(); ok {
			byItem[f.Item()] = append(byItem[f.Item()], entry{idx: i, obj: obj})
		}
	}

	for _, entries := range byItem {
		// complementOf[v] accumulates Π(1-p) over values in v's cone.
		complement := map[kb.EntityID]float64{}
		bump := func(v kb.EntityID, p float64) {
			c, ok := complement[v]
			if !ok {
				c = 1
			}
			complement[v] = c * (1 - p)
		}
		for _, e := range entries {
			p := res.Triples[e.idx].Probability
			bump(e.obj, p)
			for _, anc := range h.Ancestors(e.obj) {
				bump(anc, p)
			}
		}
		for _, e := range entries {
			if c, ok := complement[e.obj]; ok {
				agg := 1 - c
				if agg > 0.995 {
					agg = 0.995
				}
				if agg > out.Triples[e.idx].Probability {
					out.Triples[e.idx].Probability = agg
				}
			}
		}
	}
	return out
}

// ConeSupport reports the aggregated probability mass under value v for one
// data item in a fusion result — a diagnostic for inspecting hierarchy
// evidence ("several cities in CA" → high CA support).
func ConeSupport(res *fusion.Result, h *kb.Hierarchy, item kb.DataItem, v kb.EntityID) float64 {
	complement := 1.0
	for _, f := range res.Triples {
		if !f.Predicted || f.Item() != item {
			continue
		}
		obj, ok := f.Triple.Object.Entity()
		if !ok {
			continue
		}
		if obj == v || h.IsAncestor(v, obj) {
			complement *= 1 - f.Probability
		}
	}
	return 1 - complement
}
