package web

import (
	"fmt"
	"strconv"
	"strings"

	"kfusion/internal/kb"
	"kfusion/internal/randx"
	"kfusion/internal/world"
)

// Config controls corpus generation.
type Config struct {
	// Seed drives all randomness in the corpus (independent of the world
	// seed so several crawls of one world are possible).
	Seed int64

	// NumSites is the number of Web sites. Page counts per site are heavy
	// tailed: "half of the Web pages each contributes a single triple".
	NumSites int

	// MaxPagesPerSite caps the per-site page count.
	MaxPagesPerSite int

	// MeanSiteErrorRate and SiteErrorStdDev shape each site's factual error
	// rate (clamped Gaussian). The paper attributes only ~4% of extraction
	// errors to the sources themselves, so rates are small.
	MeanSiteErrorRate float64
	SiteErrorStdDev   float64

	// GeneralizeRate is the chance a page states a hierarchical value at an
	// ancestor level ("born in USA" for a San Francisco birth), which is
	// true but general (§5.4).
	GeneralizeRate float64

	// BoilerplateRate is the fraction of sites that stamp one fixed
	// statement onto every page (site templates), producing triples that
	// appear on very many URLs — including wrong ones (Figure 7's drops).
	BoilerplateRate float64

	// SyndicationRate is the fraction of sites that COPY content from
	// another site: each of their pages republishes a slice of a source
	// site's statements, errors included. This is the copying-between-
	// sources phenomenon §5.2 wants detected ("we are not sure if a wrong
	// fact has spread out").
	SyndicationRate float64

	// SyndicationShare is the fraction of a copier page's statements that
	// come from the copied site (the rest are its own).
	SyndicationShare float64

	// FactsPerPageMax bounds how many of the topic entity's data items a
	// page states.
	FactsPerPageMax int

	// TableRowsMax bounds rows per TBL block.
	TableRowsMax int
}

// DefaultConfig returns a unit-test-scale corpus configuration.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:              seed,
		NumSites:          250,
		MaxPagesPerSite:   40,
		MeanSiteErrorRate: 0.03,
		SiteErrorStdDev:   0.05,
		GeneralizeRate:    0.2,
		BoilerplateRate:   0.12,
		SyndicationRate:   0.08,
		SyndicationShare:  0.7,
		FactsPerPageMax:   18,
		TableRowsMax:      8,
	}
}

// BenchConfig returns the corpus scale used by the paper-reproduction
// benchmarks.
func BenchConfig(seed int64) Config {
	c := DefaultConfig(seed)
	c.NumSites = 1000
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.NumSites < 1 {
		return fmt.Errorf("web: NumSites must be >= 1, got %d", c.NumSites)
	}
	if c.MaxPagesPerSite < 1 {
		return fmt.Errorf("web: MaxPagesPerSite must be >= 1, got %d", c.MaxPagesPerSite)
	}
	if c.FactsPerPageMax < 1 || c.TableRowsMax < 1 {
		return fmt.Errorf("web: FactsPerPageMax and TableRowsMax must be >= 1")
	}
	return nil
}

// siteProfile gives each site a characteristic mix of content types. The
// weights are per-page inclusion probabilities per block type, tuned so DOM
// dominates triple contribution, TXT comes second, and TBL is rare —
// Figure 3's proportions.
type siteProfile struct {
	name    string
	include [numContentTypes]float64 // indexed by ContentType
	weight  float64                  // how common the profile is among sites
}

var siteProfiles = []siteProfile{
	{name: "wiki", include: [numContentTypes]float64{TXT: 0.75, DOM: 0.95, TBL: 0.03, ANO: 0.08}, weight: 0.30},
	{name: "news", include: [numContentTypes]float64{TXT: 0.95, DOM: 0.30, TBL: 0.01, ANO: 0.05}, weight: 0.24},
	{name: "directory", include: [numContentTypes]float64{TXT: 0.10, DOM: 0.95, TBL: 0.02, ANO: 0.15}, weight: 0.27},
	{name: "commerce", include: [numContentTypes]float64{TXT: 0.20, DOM: 0.80, TBL: 0.02, ANO: 0.75}, weight: 0.15},
	{name: "data", include: [numContentTypes]float64{TXT: 0.05, DOM: 0.50, TBL: 0.60, ANO: 0.02}, weight: 0.04},
}

// sentenceTemplates are the surface forms TXT blocks use. TXT extractors
// carry pattern banks over (template, attribute) pairs; a sentence is only
// extractable by an extractor that learned its pattern.
var sentenceTemplates = []string{
	"%s's %s is %s.",
	"The %s of %s is %s.", // attr first
	"%s has %s %s.",
	"%s — %s: %s.",
	"According to records, %s's %s is %s.",
	"%s is the %s of %s.", // object first
	"%s is known for %s %s.",
	"Reports state that the %s of %s equals %s.", // attr first
}

// TemplateCount is the number of sentence templates (exported for the TXT
// extractors' pattern banks).
const TemplateCount = 8

// templateOrder describes the argument order of each template: "sao"
// subject-attr-object, "aso" attr-subject-object, "osa" object-subject-attr.
var templateOrder = []string{"sao", "aso", "sao", "sao", "sao", "oas", "sao", "aso"}

// RenderSentence renders one sentence for a mention using template ti.
func RenderSentence(ti int, m Mention) string {
	attr := AttrLabel(m.Predicate)
	switch templateOrder[ti] {
	case "aso":
		return fmt.Sprintf(sentenceTemplates[ti], attr, m.SubjectName, m.ObjectName)
	case "oas":
		return fmt.Sprintf(sentenceTemplates[ti], m.ObjectName, attr, m.SubjectName)
	default:
		return fmt.Sprintf(sentenceTemplates[ti], m.SubjectName, attr, m.ObjectName)
	}
}

// AttrLabel converts a predicate ID to its human surface label:
// "/people/person/birth_place" → "birth place".
func AttrLabel(p kb.PredicateID) string {
	s := string(p)
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		s = s[i+1:]
	}
	return strings.ReplaceAll(s, "_", " ")
}

// ItemProp converts a predicate ID to a schema.org-style itemprop:
// "/people/person/birth_place" → "birthPlace".
func ItemProp(p kb.PredicateID) string {
	parts := strings.Split(AttrLabel(p), " ")
	for i := 1; i < len(parts); i++ {
		if parts[i] != "" {
			parts[i] = strings.ToUpper(parts[i][:1]) + parts[i][1:]
		}
	}
	return strings.Join(parts, "")
}

// ObjectSurface renders an object's surface form using the world's entity
// names.
func ObjectSurface(w *world.World, o kb.Object) string {
	switch o.Kind {
	case kb.KindEntity:
		if e := w.Ont.Entity(kb.EntityID(o.Str)); e != nil {
			return e.Name
		}
		return o.Str
	case kb.KindNumber:
		return strconv.FormatFloat(o.Num, 'f', -1, 64)
	default:
		return o.Str
	}
}

// Generate crawls the world: builds the synthetic corpus.
func Generate(w *world.World, cfg Config) (*Corpus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := randx.New(cfg.Seed)
	corpus := &Corpus{
		SiteErrorRate: make(map[string]float64, cfg.NumSites),
		CopiedFrom:    make(map[string]string),
	}
	profilePick := randx.NewCategorical(profileWeights())

	// First pass: original sites. Copiers are decided up front and filled
	// in afterwards so they can splice statements from rendered originals.
	type copier struct {
		index int
		prof  siteProfile
	}
	var copiers []copier
	mentionsBySite := make(map[string][]Mention)
	var originalSites []string

	for si := 0; si < cfg.NumSites; si++ {
		ssrc := root.SplitN("site", int64(si))
		prof := siteProfiles[profilePick.Sample(ssrc)]
		if si > 0 && ssrc.Bool(cfg.SyndicationRate) {
			copiers = append(copiers, copier{index: si, prof: prof})
			continue
		}
		site := fmt.Sprintf("%s%03d.example.com", prof.name, si)
		errRate := ssrc.Clamped01(cfg.MeanSiteErrorRate, cfg.SiteErrorStdDev)
		corpus.SiteErrorRate[site] = errRate
		originalSites = append(originalSites, site)

		nPages := pageCount(ssrc, cfg)
		var boiler *Mention
		if ssrc.Bool(cfg.BoilerplateRate) {
			boiler = mintBoilerplate(w, ssrc, errRate)
		}
		for pi := 0; pi < nPages; pi++ {
			psrc := ssrc.SplitN("page", int64(pi))
			page := renderPage(w, cfg, psrc, site, pi, prof, errRate, boiler)
			if len(page.Mentions()) == 0 {
				continue
			}
			corpus.Pages = append(corpus.Pages, page)
			mentionsBySite[site] = append(mentionsBySite[site], page.Mentions()...)
		}
	}

	// Second pass: copier sites republish a source site's statements —
	// errors included, which is exactly what makes copying detectable and
	// dangerous ("copied false values").
	for _, cp := range copiers {
		ssrc := root.SplitN("copier", int64(cp.index))
		site := fmt.Sprintf("%s%03d.example.com", cp.prof.name, cp.index)
		var pool []Mention
		if len(originalSites) > 0 {
			src := originalSites[ssrc.Intn(len(originalSites))]
			pool = mentionsBySite[src]
			if len(pool) > 0 {
				corpus.SiteErrorRate[site] = corpus.SiteErrorRate[src]
				corpus.CopiedFrom[site] = src
			}
		}
		if len(pool) == 0 {
			// Nothing to copy: behave like an ordinary site.
			corpus.SiteErrorRate[site] = ssrc.Clamped01(cfg.MeanSiteErrorRate, cfg.SiteErrorStdDev)
		}
		nPages := pageCount(ssrc, cfg)
		for pi := 0; pi < nPages; pi++ {
			psrc := ssrc.SplitN("page", int64(pi))
			page := renderPage(w, cfg, psrc, site, pi, cp.prof, corpus.SiteErrorRate[site], nil)
			if len(pool) > 0 {
				spliceCopiedMentions(psrc, page, pool, cfg.SyndicationShare)
			}
			if len(page.Mentions()) == 0 {
				continue
			}
			corpus.Pages = append(corpus.Pages, page)
		}
	}
	return corpus, nil
}

// MustGenerate is Generate for static configs.
func MustGenerate(w *world.World, cfg Config) *Corpus {
	c, err := Generate(w, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

func profileWeights() []float64 {
	ws := make([]float64, len(siteProfiles))
	for i, p := range siteProfiles {
		ws[i] = p.weight
	}
	return ws
}

// pageCount draws a heavy-tailed page count: many single-page sites, a few
// large ones.
func pageCount(src *randx.Source, cfg Config) int {
	if src.Bool(0.45) {
		return 1
	}
	n := 1 + int(src.LogNormal01(0.9, 1.1))
	if n > cfg.MaxPagesPerSite {
		n = cfg.MaxPagesPerSite
	}
	if n < 1 {
		n = 1
	}
	return n
}

// mintBoilerplate creates the statement a templated site stamps onto every
// page. More often than regular statements, it is wrong — site templates
// carry stale or mis-merged data.
func mintBoilerplate(w *world.World, src *randx.Source, errRate float64) *Mention {
	topic := w.SampleEntity(src)
	items := w.Truth.PredicatesOf(topic)
	if len(items) == 0 {
		return nil
	}
	pred := items[src.Intn(len(items))]
	d := kb.DataItem{Subject: topic, Predicate: pred}
	objs := w.Truth.Objects(d)
	if len(objs) == 0 {
		return nil
	}
	m := mintMention(w, src, d, objs[src.Intn(len(objs))], 0.5*boilerWrongBoost(errRate))
	return &m
}

func boilerWrongBoost(errRate float64) float64 {
	// Boilerplate is wrong at a substantially inflated rate but never
	// certainly wrong.
	v := 0.3 + 4*errRate
	if v > 0.9 {
		v = 0.9
	}
	return v
}

// mintMention renders a mention for data item d with intended object obj,
// injecting a source factual error with probability errRate.
func mintMention(w *world.World, src *randx.Source, d kb.DataItem, obj kb.Object, errRate float64) Mention {
	sourceError := false
	if src.Bool(errRate) {
		avoid := map[kb.Object]bool{}
		for _, o := range w.Truth.Objects(d) {
			avoid[o] = true
		}
		wrong := w.WrongValue(src, d.Predicate, avoid)
		// A drawn "wrong" value can still be true for hierarchical
		// predicates (an ancestor of the true city); only flag values that
		// are genuinely false.
		if !wrong.IsZero() && !avoid[wrong] && !w.IsTrue(d.WithObject(wrong)) {
			obj = wrong
			sourceError = true
		}
	}
	subjName := string(d.Subject)
	if e := w.Ont.Entity(d.Subject); e != nil {
		subjName = e.Name
	}
	return Mention{
		Subject:     d.Subject,
		SubjectName: subjName,
		Predicate:   d.Predicate,
		AttrLabel:   AttrLabel(d.Predicate),
		Object:      obj,
		ObjectName:  ObjectSurface(w, obj),
		SourceError: sourceError,
	}
}

// maybeGeneralize replaces a hierarchical entity value with a random
// ancestor with probability rate.
func maybeGeneralize(w *world.World, src *randx.Source, p kb.PredicateID, obj kb.Object, rate float64) kb.Object {
	pred := w.Ont.Predicate(p)
	if pred == nil || !pred.Hierarchical || !src.Bool(rate) {
		return obj
	}
	base, ok := obj.Entity()
	if !ok {
		return obj
	}
	anc := w.Hier.Ancestors(base)
	if len(anc) == 0 {
		return obj
	}
	return kb.EntityObject(anc[src.Intn(len(anc))])
}

// renderPage builds one page: a topic entity, a set of its facts, and one
// block per content type the site profile includes.
func renderPage(w *world.World, cfg Config, src *randx.Source, site string, pi int, prof siteProfile, errRate float64, boiler *Mention) *Page {
	page := &Page{
		URL:  fmt.Sprintf("http://%s/p%d", site, pi),
		Site: site,
	}
	page.Topic = w.SampleEntity(src)

	// Gather the topic's mentions.
	var mentions []Mention
	preds := w.Truth.PredicatesOf(page.Topic)
	perm := src.Perm(len(preds))
	limit := cfg.FactsPerPageMax
	for _, idx := range perm {
		if len(mentions) >= limit {
			break
		}
		d := kb.DataItem{Subject: page.Topic, Predicate: preds[idx]}
		objs := w.Truth.Objects(d)
		// State one or two of the item's true values.
		take := 1
		if len(objs) > 1 && src.Bool(0.45) {
			take = 2
		}
		op := src.Perm(len(objs))
		for k := 0; k < take && k < len(op); k++ {
			obj := maybeGeneralize(w, src, d.Predicate, objs[op[k]], cfg.GeneralizeRate)
			mentions = append(mentions, mintMention(w, src, d, obj, errRate))
		}
	}
	if boiler != nil {
		mentions = append(mentions, *boiler)
	}

	// Render blocks. Each content block independently includes each mention
	// with high probability, so the same fact sometimes appears in several
	// forms (the small overlaps of Figure 3).
	for _, ct := range ContentTypes() {
		if !src.Bool(prof.include[ct]) {
			continue
		}
		switch ct {
		case TXT:
			page.Blocks = append(page.Blocks, renderTXT(src, site, mentions))
		case DOM:
			page.Blocks = append(page.Blocks, renderDOM(src, mentions))
		case TBL:
			if b, ok := renderTBL(w, cfg, src, errRate); ok {
				page.Blocks = append(page.Blocks, b)
			}
		case ANO:
			page.Blocks = append(page.Blocks, renderANO(src, mentions))
		}
	}
	return page
}

func renderTXT(src *randx.Source, site string, mentions []Mention) Block {
	b := Block{Type: TXT}
	// Sites have house style: a site prefers a couple of templates.
	prefA := src.Split(site + "/tplA").Intn(TemplateCount)
	prefB := src.Split(site + "/tplB").Intn(TemplateCount)
	for _, m := range mentions {
		if !src.Bool(0.8) {
			continue
		}
		ti := prefA
		if src.Bool(0.35) {
			ti = prefB
		}
		if src.Bool(0.15) {
			ti = src.Intn(TemplateCount)
		}
		b.Sentences = append(b.Sentences, Sentence{Text: RenderSentence(ti, m), Template: ti, M: m})
	}
	return b
}

func renderDOM(src *randx.Source, mentions []Mention) Block {
	root := &DOMNode{Tag: "table"}
	for _, m := range mentions {
		if !src.Bool(0.9) {
			continue
		}
		mc := m
		row := &DOMNode{Tag: "tr", Children: []*DOMNode{
			{Tag: "th", Text: m.AttrLabel},
			{Tag: "td", Text: m.ObjectName, M: &mc},
		}}
		root.Children = append(root.Children, row)
	}
	return Block{Type: DOM, Root: root}
}

// renderTBL builds a relational table over entities of one type.
func renderTBL(w *world.World, cfg Config, src *randx.Source, errRate float64) (Block, bool) {
	// Choose a type with enough entities and a couple of its predicates.
	types := w.Ont.Types()
	tid := types[src.Intn(len(types))]
	ents := w.Ont.EntitiesOfType(tid)
	preds := w.Ont.PredicatesOfType(tid)
	if len(ents) < 3 || len(preds) < 2 {
		return Block{}, false
	}
	nCols := 2
	if len(preds) > 2 && src.Bool(0.5) {
		nCols = 3
	}
	perm := src.Perm(len(preds))
	tbl := &Table{SubjectColumn: strings.TrimPrefix(string(tid), "/")}
	for c := 0; c < nCols; c++ {
		p := preds[perm[c]]
		tbl.Attrs = append(tbl.Attrs, AttrLabel(p.ID))
		tbl.Predicates = append(tbl.Predicates, p.ID)
	}
	nRows := 3 + src.Intn(cfg.TableRowsMax-2)
	for r := 0; r < nRows; r++ {
		eid := ents[src.Intn(len(ents))]
		row := TableRow{Subject: eid, SubjectName: w.Ont.Entity(eid).Name}
		nonEmpty := false
		for _, pid := range tbl.Predicates {
			d := kb.DataItem{Subject: eid, Predicate: pid}
			objs := w.Truth.Objects(d)
			if len(objs) == 0 {
				row.Cells = append(row.Cells, nil)
				continue
			}
			obj := maybeGeneralize(w, src, pid, objs[src.Intn(len(objs))], cfg.GeneralizeRate)
			m := mintMention(w, src, d, obj, errRate)
			row.Cells = append(row.Cells, &m)
			nonEmpty = true
		}
		if nonEmpty {
			tbl.Rows = append(tbl.Rows, row)
		}
	}
	if len(tbl.Rows) == 0 {
		return Block{}, false
	}
	return Block{Type: TBL, Table: tbl}, true
}

func renderANO(src *randx.Source, mentions []Mention) Block {
	b := Block{Type: ANO}
	for _, m := range mentions {
		if !src.Bool(0.75) {
			continue
		}
		b.Annotations = append(b.Annotations, Annotation{
			ItemProp: ItemProp(m.Predicate),
			Value:    m.ObjectName,
			M:        m,
		})
	}
	return b
}

// spliceCopiedMentions injects copied statements into a copier page's
// blocks, replacing roughly share of its own content.
func spliceCopiedMentions(src *randx.Source, page *Page, pool []Mention, share float64) {
	nCopy := 1 + int(share*8)
	var copied []Mention
	for i := 0; i < nCopy; i++ {
		copied = append(copied, pool[src.Intn(len(pool))])
	}
	for bi := range page.Blocks {
		b := &page.Blocks[bi]
		switch b.Type {
		case TXT:
			keep := b.Sentences
			if len(keep) > 0 && share > 0 {
				keep = keep[:1+int(float64(len(keep))*(1-share))]
			}
			for _, m := range copied {
				ti := src.Intn(TemplateCount)
				keep = append(keep, Sentence{Text: RenderSentence(ti, m), Template: ti, M: m})
			}
			b.Sentences = keep
		case DOM:
			if b.Root == nil {
				b.Root = &DOMNode{Tag: "table"}
			}
			if n := len(b.Root.Children); n > 0 && share > 0 {
				b.Root.Children = b.Root.Children[:1+int(float64(n)*(1-share))]
			}
			for _, m := range copied {
				mc := m
				b.Root.Children = append(b.Root.Children, &DOMNode{Tag: "tr", Children: []*DOMNode{
					{Tag: "th", Text: m.AttrLabel},
					{Tag: "td", Text: m.ObjectName, M: &mc},
				}})
			}
		case ANO:
			for _, m := range copied {
				b.Annotations = append(b.Annotations, Annotation{ItemProp: ItemProp(m.Predicate), Value: m.ObjectName, M: m})
			}
		}
	}
}
