package web

import (
	"strings"
	"testing"

	"kfusion/internal/kb"
	"kfusion/internal/world"
)

func testCorpus(t testing.TB, seed int64) (*world.World, *Corpus) {
	t.Helper()
	w := world.MustGenerate(world.DefaultConfig(seed))
	c, err := Generate(w, DefaultConfig(seed+1000))
	if err != nil {
		t.Fatal(err)
	}
	return w, c
}

func TestGenerateValidates(t *testing.T) {
	w := world.MustGenerate(world.DefaultConfig(1))
	bad := DefaultConfig(1)
	bad.NumSites = 0
	if _, err := Generate(w, bad); err == nil {
		t.Error("accepted NumSites=0")
	}
}

func TestCorpusDeterministic(t *testing.T) {
	_, a := testCorpus(t, 5)
	_, b := testCorpus(t, 5)
	if len(a.Pages) != len(b.Pages) {
		t.Fatalf("page counts differ: %d vs %d", len(a.Pages), len(b.Pages))
	}
	for i := range a.Pages {
		am, bm := a.Pages[i].Mentions(), b.Pages[i].Mentions()
		if a.Pages[i].URL != b.Pages[i].URL || len(am) != len(bm) {
			t.Fatalf("page %d differs", i)
		}
		for j := range am {
			if am[j] != bm[j] {
				t.Fatalf("mention %d/%d differs: %+v vs %+v", i, j, am[j], bm[j])
			}
		}
	}
}

func TestCorpusShape(t *testing.T) {
	_, c := testCorpus(t, 6)
	if len(c.Pages) < 300 {
		t.Errorf("too few pages: %d", len(c.Pages))
	}
	if c.NumSites() != 250 {
		t.Errorf("NumSites = %d, want 250", c.NumSites())
	}
	// Heavy tail: many sites contribute a single page.
	perSite := map[string]int{}
	for _, p := range c.Pages {
		perSite[p.Site]++
	}
	single := 0
	for _, n := range perSite {
		if n == 1 {
			single++
		}
	}
	if single < len(perSite)/5 {
		t.Errorf("only %d/%d single-page sites; want heavy tail", single, len(perSite))
	}
}

func TestContentTypeMix(t *testing.T) {
	_, c := testCorpus(t, 7)
	counts := map[ContentType]int{}
	for _, p := range c.Pages {
		for i := range p.Blocks {
			counts[p.Blocks[i].Type] += len(p.Blocks[i].Mentions())
		}
	}
	if counts[DOM] <= counts[TXT] {
		t.Errorf("DOM (%d) should dominate TXT (%d) per Figure 3", counts[DOM], counts[TXT])
	}
	if counts[TXT] <= counts[TBL] {
		t.Errorf("TXT (%d) should dominate TBL (%d)", counts[TXT], counts[TBL])
	}
	for _, ct := range ContentTypes() {
		if counts[ct] == 0 {
			t.Errorf("no mentions of type %s", ct)
		}
	}
}

func TestMentionsMostlyTrue(t *testing.T) {
	w, c := testCorpus(t, 8)
	total, trueN, flagged := 0, 0, 0
	for _, p := range c.Pages {
		for _, m := range p.Mentions() {
			total++
			if w.IsTrue(m.Claim()) {
				trueN++
			}
			if m.SourceError {
				flagged++
			}
		}
	}
	if total == 0 {
		t.Fatal("no mentions")
	}
	accuracy := float64(trueN) / float64(total)
	if accuracy < 0.85 {
		t.Errorf("source accuracy %.2f too low; sources should be mostly right (extractors add the noise)", accuracy)
	}
	if flagged == 0 {
		t.Error("no source errors injected at all")
	}
	// Every flagged mention must indeed be false.
	for _, p := range c.Pages {
		for _, m := range p.Mentions() {
			if m.SourceError && w.IsTrue(m.Claim()) {
				t.Fatalf("mention flagged SourceError but claim is true: %+v", m)
			}
		}
	}
}

func TestSentenceRendering(t *testing.T) {
	m := Mention{
		SubjectName: "Tom Cruise",
		Predicate:   "/people/person/birth_place",
		ObjectName:  "Syracuse",
	}
	for ti := 0; ti < TemplateCount; ti++ {
		s := RenderSentence(ti, m)
		if !strings.Contains(s, "Tom Cruise") || !strings.Contains(s, "Syracuse") || !strings.Contains(s, "birth place") {
			t.Errorf("template %d lost a field: %q", ti, s)
		}
	}
}

func TestAttrLabelAndItemProp(t *testing.T) {
	if got := AttrLabel("/people/person/birth_place"); got != "birth place" {
		t.Errorf("AttrLabel = %q", got)
	}
	if got := ItemProp("/people/person/birth_place"); got != "birthPlace" {
		t.Errorf("ItemProp = %q", got)
	}
	if got := AttrLabel("noslash"); got != "noslash" {
		t.Errorf("AttrLabel(noslash) = %q", got)
	}
}

func TestDOMStructure(t *testing.T) {
	_, c := testCorpus(t, 9)
	checked := 0
	for _, p := range c.Pages {
		for i := range p.Blocks {
			b := &p.Blocks[i]
			if b.Type != DOM {
				continue
			}
			b.Root.Walk(func(n *DOMNode) {
				if n.Tag == "tr" {
					if len(n.Children) != 2 || n.Children[0].Tag != "th" || n.Children[1].Tag != "td" {
						t.Fatalf("malformed DOM row on %s", p.URL)
					}
					if n.Children[1].M == nil {
						t.Fatalf("td without mention on %s", p.URL)
					}
					checked++
				}
			})
		}
	}
	if checked == 0 {
		t.Fatal("no DOM rows found")
	}
}

func TestTableStructure(t *testing.T) {
	w, c := testCorpus(t, 10)
	checked := 0
	for _, p := range c.Pages {
		for i := range p.Blocks {
			b := &p.Blocks[i]
			if b.Type != TBL || b.Table == nil {
				continue
			}
			tbl := b.Table
			if len(tbl.Attrs) != len(tbl.Predicates) {
				t.Fatalf("attr/predicate mismatch on %s", p.URL)
			}
			for _, row := range tbl.Rows {
				if len(row.Cells) != len(tbl.Attrs) {
					t.Fatalf("row width mismatch on %s", p.URL)
				}
				if w.Ont.Entity(row.Subject) == nil {
					t.Fatalf("table row subject %s unknown", row.Subject)
				}
				for ci, cell := range row.Cells {
					if cell != nil && cell.Predicate != tbl.Predicates[ci] {
						t.Fatalf("cell predicate mismatch on %s", p.URL)
					}
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no tables found")
	}
}

func TestBoilerplateReplication(t *testing.T) {
	_, c := testCorpus(t, 11)
	// Some triple should appear on many pages of one site (boilerplate).
	bySiteTriple := map[string]map[kb.Triple]int{}
	pagesPerSite := map[string]int{}
	for _, p := range c.Pages {
		pagesPerSite[p.Site]++
		if bySiteTriple[p.Site] == nil {
			bySiteTriple[p.Site] = map[kb.Triple]int{}
		}
		seen := map[kb.Triple]bool{}
		for _, m := range p.Mentions() {
			tr := m.Claim()
			if !seen[tr] {
				bySiteTriple[p.Site][tr]++
				seen[tr] = true
			}
		}
	}
	found := false
	for site, triples := range bySiteTriple {
		if pagesPerSite[site] < 5 {
			continue
		}
		for _, n := range triples {
			if n >= pagesPerSite[site] && n >= 5 {
				found = true
			}
		}
	}
	if !found {
		t.Error("no boilerplate statement replicated across a site's pages")
	}
}

func TestPageMentionHelpers(t *testing.T) {
	_, c := testCorpus(t, 12)
	p := c.Pages[0]
	total := 0
	for i := range p.Blocks {
		total += len(p.Blocks[i].Mentions())
	}
	if got := len(p.Mentions()); got != total {
		t.Errorf("Page.Mentions = %d, sum of blocks = %d", got, total)
	}
	for _, ct := range ContentTypes() {
		has := false
		for i := range p.Blocks {
			if p.Blocks[i].Type == ct {
				has = true
			}
		}
		if p.HasContentType(ct) != has {
			t.Errorf("HasContentType(%s) inconsistent", ct)
		}
	}
}

func TestGeneralizedMentionsStillTrue(t *testing.T) {
	w, c := testCorpus(t, 13)
	// Hierarchical-value mentions that are not source errors must be true
	// even when stated at ancestor level.
	checked := 0
	for _, p := range c.Pages {
		for _, m := range p.Mentions() {
			pred := w.Ont.Predicate(m.Predicate)
			if pred == nil || !pred.Hierarchical || m.SourceError {
				continue
			}
			if !w.IsTrue(m.Claim()) {
				t.Fatalf("generalized mention should be true: %+v", m)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no hierarchical mentions found")
	}
}
