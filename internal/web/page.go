// Package web synthesizes the Web corpus the extractors run over: sites and
// pages carrying knowledge in the paper's four content forms — text (TXT),
// DOM trees (DOM), Web tables (TBL) and schema.org annotations (ANO) —
// rendered from the ground-truth world with source-level factual errors
// injected at a per-site rate.
//
// Each rendered statement keeps its underlying Mention (what the page
// *means*): extractors parse the surface forms, and the simulator uses the
// mention to inject well-formed extraction errors and to attribute mistakes
// during error analysis.
package web

import (
	"fmt"

	"kfusion/internal/kb"
)

// ContentType is one of the four Web content forms of §3.1.2.
type ContentType uint8

const (
	// TXT is free text; triples hide in sentences.
	TXT ContentType = iota
	// DOM is DOM-tree content (infoboxes, lists, deep-web results).
	DOM
	// TBL is relational Web tables.
	TBL
	// ANO is webmaster annotations (schema.org).
	ANO
	numContentTypes = 4
)

// String returns the paper's name for the content type.
func (c ContentType) String() string {
	switch c {
	case TXT:
		return "TXT"
	case DOM:
		return "DOM"
	case TBL:
		return "TBL"
	case ANO:
		return "ANO"
	default:
		return fmt.Sprintf("ContentType(%d)", uint8(c))
	}
}

// ContentTypes lists all four content types in display order.
func ContentTypes() []ContentType { return []ContentType{TXT, DOM, TBL, ANO} }

// Mention is the page's intended reading of one statement. Surface forms
// (names, labels) are what extractors parse; the IDs record the intent.
type Mention struct {
	Subject     kb.EntityID
	SubjectName string
	Predicate   kb.PredicateID
	AttrLabel   string
	Object      kb.Object
	// ObjectName is the surface form of the object: an entity name for
	// entity objects, the raw string or formatted number otherwise.
	ObjectName string
	// SourceError marks statements whose object the *site* got wrong (the
	// 4% error class of §3.2.1 that is not the extractors' fault).
	SourceError bool
}

// Claim returns the triple the mention asserts.
func (m Mention) Claim() kb.Triple {
	return kb.Triple{Subject: m.Subject, Predicate: m.Predicate, Object: m.Object}
}

// Sentence is one TXT statement: a surface sentence plus its mention and the
// template that produced it (which TXT extractors must know to parse it).
type Sentence struct {
	Text     string
	Template int
	M        Mention
}

// DOMNode is a simplified DOM tree node. Value-bearing nodes carry the
// mention.
type DOMNode struct {
	Tag      string
	Text     string
	Children []*DOMNode
	M        *Mention
}

// Walk visits the node and all descendants depth-first.
func (n *DOMNode) Walk(fn func(*DOMNode)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Table is a TBL block: a header row naming attributes and one row per
// subject entity. Cell[i][j] holds the value of Attrs[j] for row subject i.
type Table struct {
	// SubjectColumn is the header label of column 0 (the entity column).
	SubjectColumn string
	Attrs         []string // surface labels of columns 1..n
	Predicates    []kb.PredicateID
	Rows          []TableRow
}

// TableRow is one table row: the subject mention plus one cell per attribute
// column (cells may be empty mentions when the value is missing).
type TableRow struct {
	SubjectName string
	Subject     kb.EntityID
	Cells       []*Mention
}

// Annotation is one ANO statement: a schema.org-style itemprop plus value.
type Annotation struct {
	ItemProp string
	Value    string
	M        Mention
}

// Block is one content block of a page.
type Block struct {
	Type        ContentType
	Sentences   []Sentence   // TXT
	Root        *DOMNode     // DOM
	Table       *Table       // TBL
	Annotations []Annotation // ANO
}

// Mentions returns all mentions in the block, in document order.
func (b *Block) Mentions() []Mention {
	var out []Mention
	switch b.Type {
	case TXT:
		for _, s := range b.Sentences {
			out = append(out, s.M)
		}
	case DOM:
		b.Root.Walk(func(n *DOMNode) {
			if n.M != nil {
				out = append(out, *n.M)
			}
		})
	case TBL:
		if b.Table != nil {
			for _, r := range b.Table.Rows {
				for _, c := range r.Cells {
					if c != nil {
						out = append(out, *c)
					}
				}
			}
		}
	case ANO:
		for _, a := range b.Annotations {
			out = append(out, a.M)
		}
	}
	return out
}

// Page is one crawled Web page.
type Page struct {
	URL    string
	Site   string
	Topic  kb.EntityID // the page's main entity ("" for pure table pages)
	Blocks []Block
}

// Mentions returns every mention on the page in document order.
func (p *Page) Mentions() []Mention {
	var out []Mention
	for i := range p.Blocks {
		out = append(out, p.Blocks[i].Mentions()...)
	}
	return out
}

// HasContentType reports whether the page carries a block of type c.
func (p *Page) HasContentType(c ContentType) bool {
	for i := range p.Blocks {
		if p.Blocks[i].Type == c {
			return true
		}
	}
	return false
}

// Corpus is the crawled synthetic Web.
type Corpus struct {
	Pages []*Page
	// SiteErrorRate records each site's injected factual error rate, kept
	// for diagnostics and tests.
	SiteErrorRate map[string]float64
	// CopiedFrom records the syndication ground truth: copier site →
	// source site. Hidden from fusion; used to evaluate copy detection.
	CopiedFrom map[string]string
}

// NumSites reports the number of distinct sites in the corpus.
func (c *Corpus) NumSites() int { return len(c.SiteErrorRate) }
