package csr

// Parallel ordered key merging for the shard-and-merge interning passes.
//
// Every compiled graph interns its key spaces (provenances, extractors,
// sources, triples, statements) in first-occurrence order of the input
// stream. The parallel interning passes shard the stream, intern each shard
// locally, and then merge the shard-local key lists into the global ID
// space. The merge used to be a single sequential walk over every shard's
// keys — the bound ROADMAP called out on ExtractCompileParallel's scaling.
//
// MergeKeys replaces that walk with an ordered pairwise merge: adjacent
// shard pairs are merged concurrently, halving the shard count per round
// until one list remains. Merging two ordered key lists is dedup-preserving
// concatenation — the left list's keys keep their order, the right list
// contributes its unseen keys in order — which is associative, so the
// pairwise tree produces exactly the sequential fold's global order: every
// key lands at its overall first occurrence. The result is therefore
// independent of the worker count, like every other parallel pass here.

// keyList is one merge node: an ordered key list with its index (key ->
// position). The index always covers exactly the keys in the list.
type keyList[K comparable] struct {
	keys []K
	idx  map[K]int32
}

// MergeKeys merges shard-local key lists (each in shard-local
// first-occurrence order, shards in stream order) into the global
// first-occurrence key order, returning the merged list and its key -> ID
// index. The merge runs as a pairwise tree with adjacent pairs merged in
// parallel; the result is identical to a sequential left-to-right fold.
// The input lists are only read.
func MergeKeys[K comparable](shards [][]K, workers int) (keys []K, idx map[K]int32) {
	if len(shards) == 0 {
		return nil, map[K]int32{}
	}
	nodes := make([]keyList[K], len(shards))
	ParallelRange(len(shards), workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			// Clip capacity so mergePair's append never writes into the
			// caller's backing array.
			n := keyList[K]{keys: shards[i][:len(shards[i]):len(shards[i])], idx: make(map[K]int32, len(shards[i]))}
			for j, k := range shards[i] {
				n.idx[k] = int32(j)
			}
			nodes[i] = n
		}
	})
	for len(nodes) > 1 {
		nPairs := len(nodes) / 2
		merged := make([]keyList[K], (len(nodes)+1)/2)
		ParallelRange(nPairs, workers, func(_, lo, hi int) {
			for p := lo; p < hi; p++ {
				merged[p] = mergePair(nodes[2*p], nodes[2*p+1])
			}
		})
		if len(nodes)%2 == 1 {
			merged[len(merged)-1] = nodes[len(nodes)-1]
		}
		nodes = merged
	}
	return nodes[0].keys, nodes[0].idx
}

// mergePair merges two ordered key lists: a's keys keep their IDs, b's
// unseen keys append in b order. a's list and index are extended in place —
// safe because every merge node is consumed exactly once — so the left
// spine's map is reused instead of rebuilt at every level.
func mergePair[K comparable](a, b keyList[K]) keyList[K] {
	for _, k := range b.keys {
		if _, ok := a.idx[k]; !ok {
			a.idx[k] = int32(len(a.keys))
			a.keys = append(a.keys, k)
		}
	}
	return a
}
