package csr

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestAppendByGroupMatchesByGroup pins the delta builder's contract: merging
// new rows into an existing CSR produces exactly the adjacency ByGroup builds
// over the concatenated assignment, for any worker count and for appends that
// introduce new groups.
func TestAppendByGroupMatchesByGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		nOld, nNew, oldGroups, newGroups int
	}{
		{0, 0, 0, 0},
		{0, 10, 0, 3},
		{100, 0, 7, 7},
		{100, 37, 7, 7},
		{1000, 250, 19, 31},     // new groups appear
		{50000, 5000, 211, 307}, // past ParallelThreshold
		{50000, 20000, 11, 11},  // dense groups
	}
	for _, tc := range cases {
		oldOf := make([]int32, tc.nOld)
		for i := range oldOf {
			oldOf[i] = int32(rng.Intn(tc.oldGroups))
		}
		newOf := make([]int32, tc.nNew)
		for i := range newOf {
			newOf[i] = int32(rng.Intn(tc.newGroups))
		}
		oldStart, oldIds := ByGroup(oldOf, tc.oldGroups, 0)
		all := append(append([]int32{}, oldOf...), newOf...)
		wantStart, wantIds := ByGroup(all, tc.newGroups, 0)
		for _, workers := range []int{1, 2, 3, 7, 8} {
			gotStart, gotIds := AppendByGroup(oldStart, oldIds, newOf, tc.newGroups, workers)
			if !reflect.DeepEqual(gotStart, wantStart) {
				t.Fatalf("case %+v workers=%d: start mismatch", tc, workers)
			}
			if !equalIDs(gotIds, wantIds) {
				t.Fatalf("case %+v workers=%d: ids mismatch", tc, workers)
			}
		}
	}
}

// TestAppendByGroupLeavesInputsIntact guards the generational contract: the
// previous generation's CSR must stay valid after an append builds the next.
func TestAppendByGroupLeavesInputsIntact(t *testing.T) {
	oldOf := []int32{2, 0, 1, 0, 2, 2}
	oldStart, oldIds := ByGroup(oldOf, 3, 0)
	startCopy := append([]int32{}, oldStart...)
	idsCopy := append([]int32{}, oldIds...)
	newOf := []int32{1, 3, 0, 1}
	AppendByGroup(oldStart, oldIds, newOf, 4, 4)
	if !reflect.DeepEqual(oldStart, startCopy) || !reflect.DeepEqual(oldIds, idsCopy) {
		t.Fatal("AppendByGroup mutated its inputs")
	}
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMergeKeysMatchesSequentialFold pins the pairwise merge's determinism
// contract: the parallel tree must reproduce the sequential left-to-right
// fold's global first-occurrence order for any shard and worker count.
func TestMergeKeysMatchesSequentialFold(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, nShards := range []int{1, 2, 3, 5, 8, 13} {
		shards := make([][]string, nShards)
		for s := range shards {
			n := rng.Intn(200)
			seen := map[string]bool{}
			for i := 0; i < n; i++ {
				k := string(rune('a' + rng.Intn(26)))
				k += string(rune('a' + rng.Intn(26)))
				if !seen[k] {
					seen[k] = true
					shards[s] = append(shards[s], k)
				}
			}
		}
		// Sequential fold: walk shards in order, keep first occurrences.
		var want []string
		wantIdx := map[string]int32{}
		for _, sh := range shards {
			for _, k := range sh {
				if _, ok := wantIdx[k]; !ok {
					wantIdx[k] = int32(len(want))
					want = append(want, k)
				}
			}
		}
		for _, workers := range []int{1, 2, 4, 8} {
			keys, idx := MergeKeys(shards, workers)
			if !reflect.DeepEqual(keys, want) && !(len(keys) == 0 && len(want) == 0) {
				t.Fatalf("nShards=%d workers=%d: keys mismatch:\n got %v\nwant %v", nShards, workers, keys, want)
			}
			if len(idx) != len(wantIdx) {
				t.Fatalf("nShards=%d workers=%d: index size %d, want %d", nShards, workers, len(idx), len(wantIdx))
			}
			for k, id := range wantIdx {
				if idx[k] != id {
					t.Fatalf("nShards=%d workers=%d: idx[%q] = %d, want %d", nShards, workers, k, idx[k], id)
				}
			}
		}
	}
}

// TestMergeKeysLeavesShardsIntact guards against the merge appending into a
// shard's backing array.
func TestMergeKeysLeavesShardsIntact(t *testing.T) {
	a := make([]string, 2, 8)
	a[0], a[1] = "x", "y"
	b := []string{"y", "z"}
	shards := [][]string{a, b}
	MergeKeys(shards, 2)
	if a[0] != "x" || a[1] != "y" || len(a) != 2 {
		t.Fatal("MergeKeys mutated a shard")
	}
}
