package csr

import (
	"fmt"
	"testing"
)

// Edge cases of the reduction primitives: empty spans, single blocks, and
// span lengths that land exactly on block boundaries. These are the shapes
// where an off-by-one in the tiling would silently change every reduced
// bit, so they are pinned one by one rather than left to the randomized
// partition test.

func TestSpanBlocksEmptyInputs(t *testing.T) {
	if got := SpanBlocks(nil); len(got) != 0 {
		t.Fatalf("SpanBlocks(nil) = %v, want none", got)
	}
	if got := SpanBlocks([]int32{0}); len(got) != 0 {
		t.Fatalf("SpanBlocks with zero groups = %v, want none", got)
	}
	// Every span empty: no blocks at all.
	if got := SpanBlocks([]int32{0, 0, 0, 0}); len(got) != 0 {
		t.Fatalf("SpanBlocks of all-empty spans = %v, want none", got)
	}
}

func TestSpanBlocksEmptySpanBetweenFullOnes(t *testing.T) {
	// Group 1 is empty; its neighbors must tile as if it were absent, and
	// no block may carry group 1.
	start := []int32{0, 3, 3, 8}
	got := SpanBlocks(start)
	want := []Block{{Group: 0, Lo: 0, Hi: 3}, {Group: 2, Lo: 3, Hi: 8}}
	if len(got) != len(want) {
		t.Fatalf("SpanBlocks(%v) = %v, want %v", start, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("block %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestSpanBlocksBoundaryExactLengths(t *testing.T) {
	cases := []struct {
		spanLen int32
		want    []int32 // block lengths, in order
	}{
		{1, []int32{1}},
		{ReduceBlockSize - 1, []int32{ReduceBlockSize - 1}},
		{ReduceBlockSize, []int32{ReduceBlockSize}},
		{ReduceBlockSize + 1, []int32{ReduceBlockSize, 1}},
		{2 * ReduceBlockSize, []int32{ReduceBlockSize, ReduceBlockSize}},
		{2*ReduceBlockSize + 1, []int32{ReduceBlockSize, ReduceBlockSize, 1}},
	}
	for _, c := range cases {
		blocks := SpanBlocks([]int32{0, c.spanLen})
		if len(blocks) != len(c.want) {
			t.Fatalf("span of %d: %d blocks, want %d", c.spanLen, len(blocks), len(c.want))
		}
		pos := int32(0)
		for i, b := range blocks {
			if b.Group != 0 || b.Lo != pos || b.Hi-b.Lo != c.want[i] {
				t.Fatalf("span of %d: block %d = %+v, want len %d at %d", c.spanLen, i, b, c.want[i], pos)
			}
			pos = b.Hi
		}
		if pos != c.spanLen {
			t.Fatalf("span of %d: blocks end at %d", c.spanLen, pos)
		}
	}
}

// TestSpanBlocksOffsetSpans: block boundaries are relative to each span's
// start, not to the flat array — a span beginning mid-array still tiles
// from its own Lo.
func TestSpanBlocksOffsetSpans(t *testing.T) {
	start := []int32{0, 7, 7 + ReduceBlockSize + 2}
	blocks := SpanBlocks(start)
	want := []Block{
		{Group: 0, Lo: 0, Hi: 7},
		{Group: 1, Lo: 7, Hi: 7 + ReduceBlockSize},
		{Group: 1, Lo: 7 + ReduceBlockSize, Hi: 7 + ReduceBlockSize + 2},
	}
	if len(blocks) != len(want) {
		t.Fatalf("SpanBlocks(%v) = %v, want %v", start, blocks, want)
	}
	for i := range want {
		if blocks[i] != want[i] {
			t.Fatalf("block %d = %+v, want %+v", i, blocks[i], want[i])
		}
	}
}

// TestPairwiseTreeShape pins the exact combine tree with a non-commutative
// fold: the shape is part of the output contract (it decides every low-order
// float bit), so a refactor that rebalances the tree must fail here.
func TestPairwiseTreeShape(t *testing.T) {
	concat := func(a, b string) string { return fmt.Sprintf("(%s%s)", a, b) }
	cases := []struct {
		parts []string
		want  string
	}{
		{nil, ""},
		{[]string{"a"}, "a"},
		{[]string{"a", "b"}, "(ab)"},
		{[]string{"a", "b", "c"}, "(a(bc))"},
		{[]string{"a", "b", "c", "d"}, "((ab)(cd))"},
		{[]string{"a", "b", "c", "d", "e"}, "((ab)(c(de)))"},
	}
	for _, c := range cases {
		if got := Pairwise(c.parts, concat); got != c.want {
			t.Fatalf("Pairwise(%v) = %q, want %q", c.parts, got, c.want)
		}
	}
}

// TestPairwiseSingleBlockIdentity: a one-block span folds to the block's own
// partial bit-for-bit — no combine step may touch it.
func TestPairwiseSingleBlockIdentity(t *testing.T) {
	add := func(a, b float64) float64 { return a + b }
	v := 0.1 + 0.2 // a value with inexact low-order bits
	if got := Pairwise([]float64{v}, add); got != v {
		t.Fatalf("Pairwise([v]) = %v, want %v", got, v)
	}
}
