// Package csr holds the compressed-sparse-row building blocks shared by the
// compiled graphs of the fusion layer (internal/fusion's claim graph) and the
// extraction layer (internal/extract's statement graph): a deterministic
// parallel range splitter and a parallel grouped counting sort. Both are
// exact — results never depend on the worker count — so the compiled graphs
// built on top of them stay bit-identical across machines.
package csr

import (
	"runtime"
	"sync"
)

// ParallelRange splits [0, n) into one contiguous chunk per worker and
// waits for all of them. workers <= 0 defaults to GOMAXPROCS; the count is
// clamped to n. The chunk formula is deterministic, so two calls with the
// same (n, workers) see identical (worker, lo, hi) triples. Chunk
// boundaries never influence results — f must only touch state owned by the
// indexes it is given, plus per-worker state keyed by its worker index.
func ParallelRange(n, workers int, f func(worker, lo, hi int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			f(0, 0, n)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			f(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// ParallelThreshold is the input size below which the shared multi-pass
// parallel schemes — the grouped counting sort here, the shard-and-merge
// interning passes of the claim and extraction graphs — fall back to their
// sequential loops: under it, per-worker scratch setup and the merge pass
// cost more than the single-threaded work. One constant so retuning the
// cutoff happens in one place for every consumer.
const ParallelThreshold = 1 << 14

// ElementwiseThreshold is the element count below which the per-round
// elementwise table passes (log-likelihood and log-weight precomputes in
// the fusion and twolayer engines) stay sequential: under it, goroutine
// setup costs more than the loop. Gating on input size alone keeps results
// independent of the worker count — the passes are elementwise, so any
// split is exact.
const ElementwiseThreshold = 1 << 12

// ByGroup builds a CSR adjacency from a dense group assignment: start has
// one span per group (len nGroups+1), and ids lists the element indexes of
// each group in ascending order. Large inputs run a parallel counting sort —
// per-worker counts over contiguous chunks, a sequential prefix-sum merge
// that turns the counts into per-worker scatter offsets, then a parallel
// scatter. Chunks are contiguous and ascending and each (worker, group)
// cell owns a disjoint output range ordered by worker, so the parallel
// result is identical to the sequential one for every workers value.
func ByGroup(groupOf []int32, nGroups, workers int) (start, ids []int32) {
	n := len(groupOf)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n < ParallelThreshold || workers <= 1 {
		return byGroupSeq(groupOf, nGroups)
	}
	if workers > n {
		workers = n
	}
	// The per-worker count arrays and the sequential prefix-sum merge cost
	// O(workers × nGroups). Near-singleton groupings (nGroups ≈ n — e.g. a
	// claim set with almost no corroboration) would make that dwarf the
	// O(n) counting/scatter work, so clamp workers to keep the merge within
	// a small multiple of n; with nothing left to parallelize, fall back to
	// the sequential sort.
	if maxW := 4 * n / (nGroups + 1); workers > maxW {
		workers = maxW
	}
	if workers <= 1 {
		return byGroupSeq(groupOf, nGroups)
	}

	counts := make([]int32, workers*nGroups)
	ParallelRange(n, workers, func(w, lo, hi int) {
		c := counts[w*nGroups : (w+1)*nGroups]
		for _, p := range groupOf[lo:hi] {
			c[p]++
		}
	})

	// Prefix-sum merge: start[g] is the group's span start, and each
	// counts[w][g] cell becomes worker w's first output slot for group g.
	start = make([]int32, nGroups+1)
	run := int32(0)
	for g := 0; g < nGroups; g++ {
		start[g] = run
		for w := 0; w < workers; w++ {
			c := counts[w*nGroups+g]
			counts[w*nGroups+g] = run
			run += c
		}
	}
	start[nGroups] = run

	ids = make([]int32, n)
	ParallelRange(n, workers, func(w, lo, hi int) {
		next := counts[w*nGroups : (w+1)*nGroups]
		for i := lo; i < hi; i++ {
			p := groupOf[i]
			ids[next[p]] = int32(i)
			next[p]++
		}
	})
	return start, ids
}

func byGroupSeq(groupOf []int32, nGroups int) (start, ids []int32) {
	start = make([]int32, nGroups+1)
	for _, p := range groupOf {
		start[p+1]++
	}
	for i := 0; i < nGroups; i++ {
		start[i+1] += start[i]
	}
	ids = make([]int32, len(groupOf))
	next := make([]int32, nGroups)
	copy(next, start[:nGroups])
	for i, p := range groupOf {
		ids[next[p]] = int32(i)
		next[p]++
	}
	return start, ids
}
