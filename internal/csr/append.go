package csr

// Delta-aware CSR building.
//
// The append-capable compile pipeline (extract.Compiled.Append,
// fusion.Compiled.Append) extends existing ID spaces instead of recompiling:
// every new element receives an ID strictly greater than every existing one,
// so each group's merged span is its old span followed by the new elements in
// ascending ID order — an ordered merge that never has to interleave.
// AppendByGroup materializes that merge as a fresh (start, ids) pair without
// touching the inputs, so the previous generation's CSR stays valid while the
// new generation is built.

// ExtendInt32 returns a fresh slice of length n carrying old's prefix — the
// copy-on-extend the append pipeline uses to grow an ID-indexed column
// while the previous generation's array stays untouched.
func ExtendInt32(old []int32, n int) []int32 {
	out := make([]int32, n)
	copy(out, old)
	return out
}

// AppendByGroup merges new elements into an existing ByGroup adjacency.
// oldStart/oldIds is the previous generation's CSR (len(oldStart) =
// oldGroups+1, which may be smaller than nGroups when the append introduced
// new groups — the extra groups have empty old spans). newGroupOf assigns the
// new elements to groups; new element i has ID firstNew+int32(i) where
// firstNew = len(oldIds), so every new ID exceeds every old one and each
// merged span is oldSpan ++ newIDs, still in ascending order — exactly the
// CSR ByGroup would build over the concatenated assignment. The inputs are
// only read; the result is freshly allocated and identical for every workers
// value (the same per-(worker, group) disjoint-range scheme as ByGroup).
func AppendByGroup(oldStart, oldIds, newGroupOf []int32, nGroups, workers int) (start, ids []int32) {
	oldGroups := len(oldStart) - 1
	if oldGroups < 0 {
		oldGroups = 0
	}
	nOld := len(oldIds)
	nNew := len(newGroupOf)
	total := nOld + nNew
	w := workers
	if nNew < ParallelThreshold {
		w = 1
	}
	if w > nNew {
		w = nNew
	}
	if w < 1 {
		w = 1
	}

	// Count new elements per (worker, group); the merge below turns each cell
	// into the worker's first output slot past the group's old span.
	counts := make([]int32, w*nGroups)
	ParallelRange(nNew, w, func(wk, lo, hi int) {
		c := counts[wk*nGroups : (wk+1)*nGroups]
		for _, g := range newGroupOf[lo:hi] {
			c[g]++
		}
	})

	start = make([]int32, nGroups+1)
	run := int32(0)
	for g := 0; g < nGroups; g++ {
		start[g] = run
		if g < oldGroups {
			run += oldStart[g+1] - oldStart[g]
		}
		for wk := 0; wk < w; wk++ {
			c := counts[wk*nGroups+g]
			counts[wk*nGroups+g] = run
			run += c
		}
	}
	start[nGroups] = run

	ids = make([]int32, total)
	// Copy every group's old span to its new position, in parallel over
	// groups (each group owns a disjoint output range).
	gw := workers
	if oldGroups < ParallelThreshold {
		gw = 1
	}
	ParallelRange(oldGroups, gw, func(_, lo, hi int) {
		for g := lo; g < hi; g++ {
			copy(ids[start[g]:], oldIds[oldStart[g]:oldStart[g+1]])
		}
	})
	// Scatter the new elements after each group's old span; chunks are
	// contiguous and ascending and each (worker, group) cell owns a disjoint
	// range ordered by worker, so ascending ID order is preserved.
	firstNew := int32(nOld)
	ParallelRange(nNew, w, func(wk, lo, hi int) {
		next := counts[wk*nGroups : (wk+1)*nGroups]
		for i := lo; i < hi; i++ {
			g := newGroupOf[i]
			ids[next[g]] = firstNew + int32(i)
			next[g]++
		}
	})
	return start, ids
}
