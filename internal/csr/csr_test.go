package csr

import (
	"math/rand"
	"testing"
)

// TestByGroupParallelMatchesSequential is the property test for the parallel
// counting sort: for any group assignment and any worker count, ByGroup must
// return exactly the sequential adjacency — same spans, same ascending ID
// order within every group.
func TestByGroupParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		n, nGroups int
	}{
		{0, 0},
		{1, 1},
		{100, 7},
		{ParallelThreshold - 1, 64},   // just below the parallel cutoff
		{ParallelThreshold + 333, 1},  // one group, all workers collide
		{ParallelThreshold + 333, 64}, // generic parallel case
		{3 * ParallelThreshold, 10000},
		{2*ParallelThreshold + 17, 2*ParallelThreshold + 17}, // nGroups == n
	}
	for _, tc := range cases {
		groupOf := make([]int32, tc.n)
		for i := range groupOf {
			groupOf[i] = int32(rng.Intn(max(tc.nGroups, 1)))
		}
		wantStart, wantIDs := byGroupSeq(groupOf, tc.nGroups)
		for _, workers := range []int{1, 2, 3, 4, 7, 8, 16, 61} {
			gotStart, gotIDs := ByGroup(groupOf, tc.nGroups, workers)
			if !equalInt32(gotStart, wantStart) {
				t.Fatalf("n=%d groups=%d workers=%d: start mismatch", tc.n, tc.nGroups, workers)
			}
			if !equalInt32(gotIDs, wantIDs) {
				t.Fatalf("n=%d groups=%d workers=%d: ids mismatch", tc.n, tc.nGroups, workers)
			}
		}
	}
}

// TestByGroupInvariants checks the CSR contract directly on a parallel build:
// spans partition the input and every group's IDs are ascending members of
// that group.
func TestByGroupInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, nGroups := ParallelThreshold*2, 517
	groupOf := make([]int32, n)
	for i := range groupOf {
		groupOf[i] = int32(rng.Intn(nGroups))
	}
	start, ids := ByGroup(groupOf, nGroups, 8)
	if len(start) != nGroups+1 || int(start[nGroups]) != n || len(ids) != n {
		t.Fatalf("bad shape: len(start)=%d start[last]=%d len(ids)=%d", len(start), start[nGroups], len(ids))
	}
	seen := make([]bool, n)
	for g := 0; g < nGroups; g++ {
		prev := int32(-1)
		for _, id := range ids[start[g]:start[g+1]] {
			if groupOf[id] != int32(g) {
				t.Fatalf("group %d contains element %d of group %d", g, id, groupOf[id])
			}
			if id <= prev {
				t.Fatalf("group %d not ascending: %d after %d", g, id, prev)
			}
			prev = id
			if seen[id] {
				t.Fatalf("element %d appears twice", id)
			}
			seen[id] = true
		}
	}
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
