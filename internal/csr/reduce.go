package csr

// Deterministic block reductions.
//
// A parallel float reduction is only reproducible if the shape of its
// addition tree is fixed by the data, never by the scheduler. The helpers
// here implement the contract the compiled engines rely on: every CSR span
// is cut into fixed-size blocks (SpanBlocks), each block is summed
// left-to-right by whichever worker picks it up, and the block partials are
// folded with a combine tree shaped only by the block count (Pairwise).
// Block boundaries depend on span lengths alone, so the full reduction tree
// — and therefore every output bit — is identical for any worker count,
// including 1. The price is that the grouping differs from a single global
// left-to-right sum, which is why engines switching a reference-order pass
// onto these helpers document a small tolerance against their reference
// implementation instead of bit-equality.

// ReduceBlockSize is the fixed block length of the deterministic block
// reductions. It is a compile-time constant on purpose: the reduction tree
// (and thus the low-order float bits of every reduced sum) depends on it, so
// changing it is a documented output-perturbing event, like changing the
// summation order itself. 2048 elements keep a block's inputs within L1
// while leaving per-block bookkeeping negligible.
const ReduceBlockSize = 2048

// Block is one fixed-size chunk of a CSR span: Group is the span index it
// belongs to and [Lo, Hi) is its absolute range into the span flat array.
type Block struct {
	Group  int32
	Lo, Hi int32
}

// SpanBlocks cuts every span of a CSR start array (len nGroups+1) into
// ReduceBlockSize-element blocks, in span order, each block's range relative
// to the flat array the spans index. Block boundaries fall at multiples of
// ReduceBlockSize from each span's start, so the partition is a pure
// function of the span lengths. Empty spans produce no blocks.
func SpanBlocks(start []int32) []Block {
	// Counting and cutting run in int: a span may legitimately approach the
	// int32 offset ceiling, where int32 arithmetic on span+ReduceBlockSize
	// would wrap.
	nGroups := len(start) - 1
	total := 0
	for g := 0; g < nGroups; g++ {
		total += (int(start[g+1]) - int(start[g]) + ReduceBlockSize - 1) / ReduceBlockSize
	}
	blocks := make([]Block, 0, total)
	for g := 0; g < nGroups; g++ {
		end := int(start[g+1])
		for lo := int(start[g]); lo < end; lo += ReduceBlockSize {
			hi := lo + ReduceBlockSize
			if hi > end {
				hi = end
			}
			blocks = append(blocks, Block{Group: int32(g), Lo: int32(lo), Hi: int32(hi)})
		}
	}
	return blocks
}

// Pairwise folds partial results with a fixed binary tree shaped only by
// len(parts): the left half is folded, the right half is folded, and the two
// results are combined. With float sums this is classic pairwise summation —
// O(log n) error growth instead of left-to-right's O(n) — and because the
// tree never depends on scheduling, folding the same partials always
// produces the same bits. An empty slice returns the zero value.
//
// The same contract extends across process-shaped boundaries: internal/shard
// merges per-shard EM partials (per-provenance sums, per-source evidence,
// per-extractor [4]float64 totals) by folding the shard partials in shard
// order with this tree, so a sharded merge is as deterministic — and as
// shard-count-dependent in its low-order bits — as the in-graph block
// reductions are worker-count-independent. A single-shard fold is the
// identity, which is what makes K=1 bit-identical to the unsharded engines.
func Pairwise[T any](parts []T, add func(a, b T) T) T {
	switch len(parts) {
	case 0:
		var zero T
		return zero
	case 1:
		return parts[0]
	case 2:
		return add(parts[0], parts[1])
	}
	h := len(parts) / 2
	return add(Pairwise(parts[:h], add), Pairwise(parts[h:], add))
}

// AddFloat64 is the scalar fold operator for Pairwise over plain float64
// partials (e.g. the cross-shard merge of per-group sums).
func AddFloat64(a, b float64) float64 { return a + b }
