package csr

import (
	"math/rand"
	"testing"
)

// TestSpanBlocksPartition checks that SpanBlocks tiles every span exactly:
// blocks are in span order, contiguous within a span, never cross a span
// boundary and never exceed ReduceBlockSize.
func TestSpanBlocksPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	spans := []int32{0, 1, ReduceBlockSize - 1, ReduceBlockSize, ReduceBlockSize + 1,
		3*ReduceBlockSize + 17, 0, int32(rng.Intn(5 * ReduceBlockSize))}
	start := make([]int32, len(spans)+1)
	for i, n := range spans {
		start[i+1] = start[i] + n
	}
	blocks := SpanBlocks(start)
	bi := 0
	for g := range spans {
		pos := start[g]
		for pos < start[g+1] {
			if bi >= len(blocks) {
				t.Fatalf("ran out of blocks at group %d", g)
			}
			b := blocks[bi]
			if b.Group != int32(g) || b.Lo != pos {
				t.Fatalf("block %d = %+v, want group %d starting at %d", bi, b, g, pos)
			}
			if b.Hi <= b.Lo || b.Hi-b.Lo > ReduceBlockSize || b.Hi > start[g+1] {
				t.Fatalf("block %d = %+v has a bad range (span ends at %d)", bi, b, start[g+1])
			}
			pos = b.Hi
			bi++
		}
	}
	if bi != len(blocks) {
		t.Fatalf("%d blocks produced, %d consumed", len(blocks), bi)
	}
}

// TestPairwiseDeterministicAndExactOnInts: the fold shape is fixed by length
// alone, and over exact arithmetic it reproduces the plain sum.
func TestPairwiseDeterministicAndExactOnInts(t *testing.T) {
	add := func(a, b int64) int64 { return a + b }
	if got := Pairwise(nil, add); got != 0 {
		t.Fatalf("Pairwise(nil) = %d, want 0", got)
	}
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 2, 3, 4, 7, 100, 1023} {
		parts := make([]int64, n)
		want := int64(0)
		for i := range parts {
			parts[i] = int64(rng.Intn(1000) - 500)
			want += parts[i]
		}
		if got := Pairwise(parts, add); got != want {
			t.Fatalf("n=%d: Pairwise = %d, want %d", n, got, want)
		}
	}
}

// TestBlockReductionWorkerInvariance is the end-to-end contract the twolayer
// M-step relies on: summing per-block partials (each block left-to-right)
// and folding them with Pairwise yields bit-identical floats no matter how
// blocks are distributed over workers.
func TestBlockReductionWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	start := []int32{0, 5, 5, 2*ReduceBlockSize + 100, 7*ReduceBlockSize + 1}
	vals := make([]float64, start[len(start)-1])
	for i := range vals {
		vals[i] = rng.Float64()
	}
	blocks := SpanBlocks(start)
	add := func(a, b float64) float64 { return a + b }

	reduce := func(workers int) []float64 {
		partial := make([]float64, len(blocks))
		ParallelRange(len(blocks), workers, func(_, lo, hi int) {
			for bi := lo; bi < hi; bi++ {
				s := 0.0
				for _, v := range vals[blocks[bi].Lo:blocks[bi].Hi] {
					s += v
				}
				partial[bi] = s
			}
		})
		out := make([]float64, len(start)-1)
		bi := 0
		for g := range out {
			lo := bi
			for bi < len(blocks) && blocks[bi].Group == int32(g) {
				bi++
			}
			out[g] = Pairwise(partial[lo:bi], add)
		}
		return out
	}

	want := reduce(1)
	for _, workers := range []int{2, 3, 7, 8, 16} {
		got := reduce(workers)
		for g := range want {
			if got[g] != want[g] {
				t.Fatalf("workers=%d group %d: %v != %v", workers, g, got[g], want[g])
			}
		}
	}
}
