package faultfs

import (
	"bytes"
	"errors"
	"testing"
)

func TestMemBasics(t *testing.T) {
	m := NewMem()
	f, err := m.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := m.OpenAppend("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write([]byte(" world")); err != nil {
		t.Fatal(err)
	}
	b, err := m.ReadFile("a")
	if err != nil || string(b) != "hello world" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	if err := m.Rename("a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadFile("a"); err == nil {
		t.Fatal("old name still readable after rename")
	}
	names, err := m.List()
	if err != nil || len(names) != 1 || names[0] != "b" {
		t.Fatalf("List = %v, %v", names, err)
	}

	clone := m.Clone()
	if err := m.Truncate("b", 5); err != nil {
		t.Fatal(err)
	}
	cb, _ := clone.ReadFile("b")
	if string(cb) != "hello world" {
		t.Fatal("Clone shares storage with the original")
	}
	if err := m.FlipBit("b", 0, 0); err != nil {
		t.Fatal(err)
	}
	b, _ = m.ReadFile("b")
	if string(b) == "hello" {
		t.Fatal("FlipBit had no effect")
	}
}

// TestFaultyTornWrite checks the byte-granular crash model: a Write crossing
// the budget boundary persists exactly the covered prefix, and every later
// operation fails with ErrInjected.
func TestFaultyTornWrite(t *testing.T) {
	mem := NewMem()
	// 1 step for Create + 3 bytes of budget.
	ffs := NewFaulty(mem, 4)
	f, err := ffs.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("Write = %d, %v; want 3, ErrInjected", n, err)
	}
	b, _ := mem.ReadFile("x")
	if !bytes.Equal(b, []byte("abc")) {
		t.Fatalf("disk has %q, want %q", b, "abc")
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Sync after death = %v", err)
	}
	if _, err := ffs.Create("y"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Create after death = %v", err)
	}
	// Reads stay free even after death: recovery reads the survived bytes.
	if _, err := ffs.ReadFile("x"); err != nil {
		t.Fatalf("ReadFile after death = %v", err)
	}
}

func TestFaultySpentRecorder(t *testing.T) {
	ffs := NewFaulty(NewMem(), -1)
	f, _ := ffs.Create("x")     // 1
	f.Write([]byte("abcdefgh")) // 8
	f.Sync()                    // 1
	f.Close()                   // 1
	ffs.Rename("x", "y")        // 1
	if got := ffs.Spent(); got != 12 {
		t.Fatalf("Spent = %d, want 12", got)
	}
}

func TestTornRename(t *testing.T) {
	mem := NewMem()
	f, _ := mem.Create("src")
	f.Write([]byte("data"))

	ffs := NewFaulty(mem, 0)
	ffs.TornRename = true
	if err := ffs.Rename("src", "dst"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Rename = %v", err)
	}
	if _, err := mem.ReadFile("src"); err == nil {
		t.Fatal("torn rename left the source file")
	}
	if _, err := mem.ReadFile("dst"); err == nil {
		t.Fatal("torn rename created the destination")
	}

	// Without TornRename the out-of-budget rename is a clean no-op.
	mem2 := NewMem()
	f2, _ := mem2.Create("src")
	f2.Write([]byte("data"))
	ffs2 := NewFaulty(mem2, 0)
	if err := ffs2.Rename("src", "dst"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Rename = %v", err)
	}
	if _, err := mem2.ReadFile("src"); err != nil {
		t.Fatal("clean crash lost the source file")
	}
}

func TestOSRoundTrip(t *testing.T) {
	o, err := NewOS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f, err := o.Create("tmp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := o.Rename("tmp", "final"); err != nil {
		t.Fatal(err)
	}
	if err := o.SyncDir(); err != nil {
		t.Fatal(err)
	}
	b, err := o.ReadFile("final")
	if err != nil || string(b) != "payload" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	names, err := o.List()
	if err != nil || len(names) != 1 || names[0] != "final" {
		t.Fatalf("List = %v, %v", names, err)
	}
	if err := o.Remove("final"); err != nil {
		t.Fatal(err)
	}
	if err := o.Remove("final"); err != nil {
		t.Fatalf("Remove of absent file = %v", err)
	}
}
