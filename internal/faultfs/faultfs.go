// Package faultfs is the failpoint filesystem layer the generation store's
// crash-recovery property tests stand on. It abstracts the handful of
// filesystem operations genstore needs (FS), provides a real implementation
// with durability barriers (OS), an in-memory one for tests (Mem), and a
// fault-injecting wrapper (Faulty) that kills the world after a configurable
// number of I/O steps — including halfway through a Write, which models a
// torn page, and during a Rename, which models a non-atomic rename.
//
// The crash model: every successfully written byte is durable immediately
// (the Mem map IS the disk), and the step budget decides where the crash
// lands. A property test records a full run to count its steps, then replays
// it once per possible crash point, asserting recovery from the survived
// bytes reproduces the uncrashed state.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// ErrInjected is the error every operation returns once a Faulty budget is
// exhausted — the moment "the process dies" in the crash model.
var ErrInjected = errors.New("faultfs: injected fault")

// File is a writable file handle.
type File interface {
	io.Writer
	// Sync flushes written bytes to durable storage.
	Sync() error
	Close() error
}

// FS is the filesystem surface the generation store writes through. All
// paths are names relative to the store directory (no separators).
type FS interface {
	// ReadFile returns the full contents of a file.
	ReadFile(name string) ([]byte, error)
	// Create truncates/creates a file for writing.
	Create(name string) (File, error)
	// OpenAppend opens a file for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// Rename atomically replaces newname with oldname's file.
	Rename(oldname, newname string) error
	// Remove deletes a file (no error if absent).
	Remove(name string) error
	// List returns the file names in the store, sorted.
	List() ([]string, error)
	// SyncDir flushes directory metadata (renames, removals).
	SyncDir() error
}

// ---- OS: the real filesystem rooted at a directory ----

// OS is the production FS: files in one directory, fsync on File.Sync, and
// directory fsync on SyncDir so renames are durable.
type OS struct{ Dir string }

// NewOS returns an OS filesystem rooted at dir, creating it if needed.
func NewOS(dir string) (*OS, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("faultfs: mkdir: %w", err)
	}
	return &OS{Dir: dir}, nil
}

func (o *OS) path(name string) string { return filepath.Join(o.Dir, name) }

func (o *OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(o.path(name)) }

func (o *OS) Create(name string) (File, error) { return os.Create(o.path(name)) }

func (o *OS) OpenAppend(name string) (File, error) {
	return os.OpenFile(o.path(name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
}

func (o *OS) Rename(oldname, newname string) error {
	return os.Rename(o.path(oldname), o.path(newname))
}

func (o *OS) Remove(name string) error {
	err := os.Remove(o.path(name))
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}

func (o *OS) List() ([]string, error) {
	ents, err := os.ReadDir(o.Dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (o *OS) SyncDir() error {
	d, err := os.Open(o.Dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// ---- Mem: in-memory filesystem for tests ----

// Mem is an in-memory FS whose map is "the disk": whatever a crashed run
// managed to write is exactly what recovery sees. Safe for concurrent use.
type Mem struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewMem returns an empty in-memory filesystem.
func NewMem() *Mem { return &Mem{files: make(map[string][]byte)} }

func (m *Mem) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[name]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return append([]byte(nil), b...), nil
}

func (m *Mem) Create(name string) (File, error) {
	m.mu.Lock()
	m.files[name] = nil
	m.mu.Unlock()
	return &memFile{m: m, name: name}, nil
}

func (m *Mem) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	if _, ok := m.files[name]; !ok {
		m.files[name] = nil
	}
	m.mu.Unlock()
	return &memFile{m: m, name: name}, nil
}

func (m *Mem) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[oldname]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldname, Err: os.ErrNotExist}
	}
	m.files[newname] = b
	delete(m.files, oldname)
	return nil
}

func (m *Mem) Remove(name string) error {
	m.mu.Lock()
	delete(m.files, name)
	m.mu.Unlock()
	return nil
}

func (m *Mem) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for n := range m.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

func (m *Mem) SyncDir() error { return nil }

// Clone deep-copies the filesystem — the "disk image at the crash" a
// recovery run opens.
func (m *Mem) Clone() *Mem {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := NewMem()
	for n, b := range m.files {
		c.files[n] = append([]byte(nil), b...)
	}
	return c
}

// FlipBit XORs one bit of a stored file, simulating silent media corruption.
func (m *Mem) FlipBit(name string, byteOff int, bit uint) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[name]
	if !ok {
		return &os.PathError{Op: "flipbit", Path: name, Err: os.ErrNotExist}
	}
	if byteOff < 0 || byteOff >= len(b) {
		return fmt.Errorf("faultfs: flip offset %d outside %q (%d bytes)", byteOff, name, len(b))
	}
	b[byteOff] ^= 1 << (bit % 8)
	return nil
}

// Truncate cuts a stored file to n bytes, simulating a torn tail.
func (m *Mem) Truncate(name string, n int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[name]
	if !ok {
		return &os.PathError{Op: "truncate", Path: name, Err: os.ErrNotExist}
	}
	if n < 0 || n > len(b) {
		return fmt.Errorf("faultfs: truncate length %d outside %q (%d bytes)", n, name, len(b))
	}
	m.files[name] = b[:n]
	return nil
}

// Size reports a stored file's length in bytes.
func (m *Mem) Size(name string) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[name]
	if !ok {
		return 0, &os.PathError{Op: "size", Path: name, Err: os.ErrNotExist}
	}
	return len(b), nil
}

type memFile struct {
	m    *Mem
	name string
}

func (f *memFile) Write(p []byte) (int, error) {
	f.m.mu.Lock()
	f.m.files[f.name] = append(f.m.files[f.name], p...)
	f.m.mu.Unlock()
	return len(p), nil
}

func (f *memFile) Sync() error  { return nil }
func (f *memFile) Close() error { return nil }

// ---- Faulty: step-budget fault injection ----

// Faulty wraps an FS and kills every operation after a step budget runs out.
// Costs: writing n bytes costs n steps — a Write that crosses the boundary
// writes only the bytes the budget covers and then fails (a torn write) —
// and Create, OpenAppend, Rename, Remove, Sync and SyncDir cost 1 step each.
// Reads and List are free: the crash model only schedules the mutating ops.
//
// TornRename makes an out-of-budget Rename destroy the source file without
// creating the destination — the pathological non-atomic rename a journaling
// filesystem prevents but a naive one does not.
type Faulty struct {
	FS
	TornRename bool

	mu     sync.Mutex
	budget int64
	spent  int64
	dead   bool
}

// NewFaulty wraps fs with a step budget. A negative budget never expires.
func NewFaulty(fs FS, budget int64) *Faulty { return &Faulty{FS: fs, budget: budget} }

// Spent reports the total steps charged so far. A recorder pass runs with a
// negative (infinite) budget and reads Spent to learn the crash-point count
// the property test sweeps.
func (f *Faulty) Spent() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.spent
}

// charge consumes up to n steps; it returns how many were granted and
// whether the budget survived the full charge.
func (f *Faulty) charge(n int64) (granted int64, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.spent += n
	if f.budget < 0 {
		return n, true
	}
	if f.dead {
		return 0, false
	}
	if f.budget >= n {
		f.budget -= n
		return n, true
	}
	granted = f.budget
	f.budget = 0
	f.dead = true
	return granted, false
}

func (f *Faulty) Create(name string) (File, error) {
	if _, ok := f.charge(1); !ok {
		return nil, ErrInjected
	}
	file, err := f.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, file: file}, nil
}

func (f *Faulty) OpenAppend(name string) (File, error) {
	if _, ok := f.charge(1); !ok {
		return nil, ErrInjected
	}
	file, err := f.FS.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, file: file}, nil
}

func (f *Faulty) Rename(oldname, newname string) error {
	if _, ok := f.charge(1); !ok {
		if f.TornRename {
			// The crash interrupted the rename after unlinking the source:
			// both names gone.
			_ = f.FS.Remove(oldname)
		}
		return ErrInjected
	}
	return f.FS.Rename(oldname, newname)
}

func (f *Faulty) Remove(name string) error {
	if _, ok := f.charge(1); !ok {
		return ErrInjected
	}
	return f.FS.Remove(name)
}

func (f *Faulty) SyncDir() error {
	if _, ok := f.charge(1); !ok {
		return ErrInjected
	}
	return f.FS.SyncDir()
}

type faultyFile struct {
	f    *Faulty
	file File
}

func (ff *faultyFile) Write(p []byte) (int, error) {
	granted, ok := ff.f.charge(int64(len(p)))
	if ok {
		return ff.file.Write(p)
	}
	// Torn write: the bytes the budget covered made it to disk.
	if granted > 0 {
		if _, err := ff.file.Write(p[:granted]); err != nil {
			return 0, err
		}
	}
	return int(granted), ErrInjected
}

func (ff *faultyFile) Sync() error {
	if _, ok := ff.f.charge(1); !ok {
		return ErrInjected
	}
	return ff.file.Sync()
}

func (ff *faultyFile) Close() error {
	if _, ok := ff.f.charge(1); !ok {
		_ = ff.file.Close()
		return ErrInjected
	}
	return ff.file.Close()
}
