// Package valuesim implements the second half of the paper's §5.4 future
// direction: exploiting similarity between values. "Values can be similar to
// each other; for example, 8849 and 8850 are similar in their numerical
// value ... A triple with a particular object presumably also partially
// supports a similar object."
//
// Extraction garbage is often a near-miss of the real value — a truncated
// span, an off-by-one digit. Under exact-match fusion that support is lost;
// here, values of one data item are clustered by similarity, and every value
// is credited with its cluster's aggregate support (noisy-or), so near-miss
// readings reinforce the value they approximate instead of competing with
// it.
package valuesim

import (
	"math"
	"strings"

	"kfusion/internal/fusion"
	"kfusion/internal/kb"
)

// Config controls similarity thresholds.
type Config struct {
	// MaxEditDistance is the Levenshtein bound for string similarity.
	MaxEditDistance int
	// MinPrefixLen treats a string as similar to any string it prefixes
	// (truncated spans), provided the prefix is at least this long.
	MinPrefixLen int
	// NumericTolerance is the relative difference bound for numbers
	// (|a-b| / max(|a|,|b|)).
	NumericTolerance float64
}

// DefaultConfig returns the thresholds used in the ablation.
func DefaultConfig() Config {
	return Config{MaxEditDistance: 2, MinPrefixLen: 4, NumericTolerance: 0.002}
}

// Similar reports whether two objects are similar under cfg. Entity
// references are similar only when identical (identity is what entity
// linkage is for); strings and numbers use the configured tolerances.
func Similar(a, b kb.Object, cfg Config) bool {
	if a == b {
		return true
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case kb.KindEntity:
		return false
	case kb.KindNumber:
		den := math.Max(math.Abs(a.Num), math.Abs(b.Num))
		if den == 0 {
			return true
		}
		return math.Abs(a.Num-b.Num)/den <= cfg.NumericTolerance
	default:
		return similarStrings(a.Str, b.Str, cfg)
	}
}

func similarStrings(a, b string, cfg Config) bool {
	if a == b {
		return true
	}
	// Truncated-span relation: one is a long-enough prefix of the other.
	short, long := a, b
	if len(short) > len(long) {
		short, long = long, short
	}
	if len(short) >= cfg.MinPrefixLen && strings.HasPrefix(long, short) {
		return true
	}
	// Bounded edit distance, early-exit on length gap. Applied only to
	// strings long enough to carry signal — any two short tokens sit within
	// a couple of edits of each other.
	if len(short) < cfg.MinPrefixLen {
		return false
	}
	if abs(len(a)-len(b)) > cfg.MaxEditDistance {
		return false
	}
	return editDistanceAtMost(a, b, cfg.MaxEditDistance)
}

// editDistanceAtMost reports whether Levenshtein(a,b) <= k using the banded
// dynamic program (O(k·min(len)) space and time).
func editDistanceAtMost(a, b string, k int) bool {
	if k < 0 {
		return false
	}
	la, lb := len(a), len(b)
	if la > lb {
		a, b = b, a
		la, lb = lb, la
	}
	if lb-la > k {
		return false
	}
	prev := make([]int, la+1)
	cur := make([]int, la+1)
	for i := 0; i <= la; i++ {
		prev[i] = i
	}
	for j := 1; j <= lb; j++ {
		cur[0] = j
		rowMin := cur[0]
		for i := 1; i <= la; i++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[i] = min3(prev[i]+1, cur[i-1]+1, prev[i-1]+cost)
			if cur[i] < rowMin {
				rowMin = cur[i]
			}
		}
		if rowMin > k {
			return false
		}
		prev, cur = cur, prev
	}
	return prev[la] <= k
}

// Adjust returns a copy of res where each predicted value's probability is
// raised to its similarity cluster's aggregate support: p'(v) = 1 - Π over
// similar values v' of (1 - p(v')), capped below 1. Probabilities never
// decrease; entity values and dissimilar values are untouched.
func Adjust(res *fusion.Result, cfg Config) *fusion.Result {
	out := &fusion.Result{
		Rounds:       res.Rounds,
		ProvAccuracy: res.ProvAccuracy,
		Unpredicted:  res.Unpredicted,
		Triples:      make([]fusion.FusedTriple, len(res.Triples)),
	}
	copy(out.Triples, res.Triples)

	byItem := map[kb.DataItem][]int{}
	for i, f := range res.Triples {
		if f.Predicted && f.Triple.Object.Kind != kb.KindEntity {
			byItem[f.Item()] = append(byItem[f.Item()], i)
		}
	}
	for _, idxs := range byItem {
		if len(idxs) < 2 {
			continue
		}
		for _, i := range idxs {
			complement := 1 - res.Triples[i].Probability
			for _, j := range idxs {
				if i == j {
					continue
				}
				if Similar(res.Triples[i].Triple.Object, res.Triples[j].Triple.Object, cfg) {
					complement *= 1 - res.Triples[j].Probability
				}
			}
			agg := 1 - complement
			if agg > 0.995 {
				agg = 0.995
			}
			if agg > out.Triples[i].Probability {
				out.Triples[i].Probability = agg
			}
		}
	}
	return out
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
