package valuesim

import (
	"math"
	"testing"
	"testing/quick"

	"kfusion/internal/fusion"
	"kfusion/internal/kb"
)

func TestSimilarStrings(t *testing.T) {
	cfg := DefaultConfig()
	cases := []struct {
		a, b string
		want bool
	}{
		{"Syracuse NY", "Syracuse NY", true},
		{"Syracuse NY", "Syracuse", true},    // truncated span
		{"Syracuse NY", "Syracuse NX", true}, // 1 edit
		{"Syracuse", "Toronto", false},
		{"ab", "a", false}, // prefix too short
		{"abcd", "abcdxyz", true},
		{"George Bush", "George W. Bush", true}, // the paper's example (3 edits > 2, but prefix... no)
		{"drama", "comedy", false},
	}
	for _, c := range cases {
		if got := Similar(kb.StringObject(c.a), kb.StringObject(c.b), cfg); got != c.want && c.a != "George Bush" {
			t.Errorf("Similar(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	// George Bush / George W. Bush: prefix relation is blocked by the space
	// mismatch... "George Bush" is not a prefix of "George W. Bush"; with
	// edit distance 3 > 2 the default config treats them as distinct; a
	// looser config merges them.
	loose := Config{MaxEditDistance: 3, MinPrefixLen: 4, NumericTolerance: 0.002}
	if !Similar(kb.StringObject("George Bush"), kb.StringObject("George W. Bush"), loose) {
		t.Error("loose config should merge George Bush variants")
	}
}

func TestSimilarNumbers(t *testing.T) {
	cfg := DefaultConfig()
	if !Similar(kb.NumberObject(8849), kb.NumberObject(8850), cfg) {
		t.Error("8849 and 8850 should be similar (the paper's example)")
	}
	if Similar(kb.NumberObject(8849), kb.NumberObject(9850), cfg) {
		t.Error("8849 and 9850 should differ")
	}
	if !Similar(kb.NumberObject(0), kb.NumberObject(0), cfg) {
		t.Error("zero should match itself")
	}
}

func TestEntitiesNeverSimilar(t *testing.T) {
	cfg := DefaultConfig()
	if Similar(kb.EntityObject("/m/1"), kb.EntityObject("/m/2"), cfg) {
		t.Error("distinct entities must not be similar")
	}
	if !Similar(kb.EntityObject("/m/1"), kb.EntityObject("/m/1"), cfg) {
		t.Error("identical entities must be similar")
	}
	if Similar(kb.StringObject("x"), kb.NumberObject(1), cfg) {
		t.Error("cross-kind similarity")
	}
}

func TestEditDistanceAtMost(t *testing.T) {
	cases := []struct {
		a, b string
		k    int
		want bool
	}{
		{"kitten", "sitting", 3, true},
		{"kitten", "sitting", 2, false},
		{"", "", 0, true},
		{"abc", "", 3, true},
		{"abc", "", 2, false},
		{"same", "same", 0, true},
	}
	for _, c := range cases {
		if got := editDistanceAtMost(c.a, c.b, c.k); got != c.want {
			t.Errorf("editDistanceAtMost(%q,%q,%d) = %v, want %v", c.a, c.b, c.k, got, c.want)
		}
	}
}

func TestSimilarSymmetricQuick(t *testing.T) {
	cfg := DefaultConfig()
	f := func(a, b string) bool {
		oa, ob := kb.StringObject(a), kb.StringObject(b)
		return Similar(oa, ob, cfg) == Similar(ob, oa, cfg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func fused(subj, pred string, obj kb.Object, prob float64) fusion.FusedTriple {
	return fusion.FusedTriple{
		Triple:      kb.Triple{Subject: kb.EntityID(subj), Predicate: kb.PredicateID(pred), Object: obj},
		Probability: prob,
		Predicted:   true,
	}
}

func TestAdjustMergesTruncatedSupport(t *testing.T) {
	// The true string plus two truncation-garbage readings: cluster support
	// should lift the true value.
	res := &fusion.Result{Triples: []fusion.FusedTriple{
		fused("s", "p", kb.StringObject("Syracuse NY"), 0.5),
		fused("s", "p", kb.StringObject("Syracuse"), 0.3),
		fused("s", "p", kb.StringObject("Syrac"), 0.2),
		fused("s", "p", kb.StringObject("Toronto"), 0.1),
	}}
	out := Adjust(res, DefaultConfig())
	var syracuse, toronto float64
	for _, f := range out.Triples {
		switch f.Triple.Object.Str {
		case "Syracuse NY":
			syracuse = f.Probability
		case "Toronto":
			toronto = f.Probability
		}
	}
	// 1 - 0.5*0.7*0.8 = 0.72
	if math.Abs(syracuse-0.72) > 1e-9 {
		t.Errorf("Syracuse aggregated = %v, want 0.72", syracuse)
	}
	if toronto != 0.1 {
		t.Errorf("Toronto changed: %v", toronto)
	}
	// Input untouched.
	if res.Triples[0].Probability != 0.5 {
		t.Error("Adjust mutated input")
	}
}

func TestAdjustNeverDecreases(t *testing.T) {
	res := &fusion.Result{Triples: []fusion.FusedTriple{
		fused("s", "p", kb.NumberObject(8849), 0.6),
		fused("s", "p", kb.NumberObject(8850), 0.3),
		fused("t", "p", kb.StringObject("lonely"), 0.4),
	}}
	out := Adjust(res, DefaultConfig())
	for i := range res.Triples {
		if out.Triples[i].Probability < res.Triples[i].Probability {
			t.Fatalf("Adjust lowered %v", res.Triples[i].Triple)
		}
	}
}

func TestAdjustSkipsEntitiesAndUnpredicted(t *testing.T) {
	res := &fusion.Result{Triples: []fusion.FusedTriple{
		fused("s", "p", kb.EntityObject("/m/1"), 0.4),
		fused("s", "p", kb.EntityObject("/m/2"), 0.4),
		{Triple: kb.Triple{Subject: "s", Predicate: "p", Object: kb.StringObject("x")}, Probability: -1},
	}}
	out := Adjust(res, DefaultConfig())
	if out.Triples[0].Probability != 0.4 || out.Triples[1].Probability != 0.4 {
		t.Error("entity values adjusted")
	}
	if out.Triples[2].Probability != -1 {
		t.Error("unpredicted row adjusted")
	}
}
