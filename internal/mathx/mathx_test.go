package mathx

import (
	"math"
	"math/rand"
	"testing"
)

// relErr returns |got/want - 1|, treating equal special values as exact.
func relErr(got, want float64) float64 {
	if got == want {
		return 0
	}
	if math.IsNaN(got) && math.IsNaN(want) {
		return 0
	}
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got/want - 1)
}

// operatingDomain returns inputs drawn from the ranges the engines actually
// feed the kernels: log-odds sums (tens to a few hundred either side of 0),
// probabilities and their clamped log-odds arguments, likelihood-ratio
// arguments in (0,1], and the softmax exponents (always ≤ 0 after max
// subtraction, down to a few hundred negative).
func operatingDomain(rng *rand.Rand, n int) []float64 {
	xs := make([]float64, 0, 4*n)
	for i := 0; i < n; i++ {
		xs = append(xs,
			rng.Float64()*700-350, // log-odds sums
			-rng.Float64()*745,    // softmax exponents after max subtraction
			rng.Float64()*2-1,     // near-zero region (Taylor center)
			rng.NormFloat64()*20,  // typical per-round accumulations
		)
	}
	return xs
}

func TestFastExpMaxRelErrOperatingDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	worst := 0.0
	for _, x := range operatingDomain(rng, 50000) {
		e := relErr(fastExp(x), math.Exp(x))
		if e > worst {
			worst = e
		}
		if e > FastExpMaxRelErr {
			t.Fatalf("fastExp(%g) = %g, want %g: rel err %.3e > bound %.3e",
				x, fastExp(x), math.Exp(x), e, FastExpMaxRelErr)
		}
	}
	t.Logf("fastExp worst rel err over operating domain: %.3e (bound %.3e)", worst, FastExpMaxRelErr)
}

func TestFastExpMaxRelErrFullDomain(t *testing.T) {
	// Dense uniform grid over the whole non-over/underflowing domain.
	worst := 0.0
	const n = 2_000_000
	for i := 0; i <= n; i++ {
		x := expUnderflow + (expOverflow-expUnderflow)*float64(i)/n
		want := math.Exp(x)
		if want < 2.2250738585072014e-308 || math.IsInf(want, 1) {
			// Subnormal results lose relative precision by construction
			// (fewer mantissa bits); the bound covers normal results.
			continue
		}
		e := relErr(fastExp(x), want)
		if e > worst {
			worst = e
		}
		if e > FastExpMaxRelErr {
			t.Fatalf("fastExp(%g): rel err %.3e > bound %.3e", x, e, FastExpMaxRelErr)
		}
	}
	t.Logf("fastExp worst rel err over [%g, %g]: %.3e (bound %.3e)",
		expUnderflow, expOverflow, worst, FastExpMaxRelErr)
}

func TestFastExpEdgeCases(t *testing.T) {
	if !math.IsNaN(fastExp(math.NaN())) {
		t.Errorf("fastExp(NaN) = %g, want NaN", fastExp(math.NaN()))
	}
	if got := fastExp(math.Inf(1)); !math.IsInf(got, 1) {
		t.Errorf("fastExp(+Inf) = %g, want +Inf", got)
	}
	if got := fastExp(math.Inf(-1)); got != 0 {
		t.Errorf("fastExp(-Inf) = %g, want 0", got)
	}
	if got := fastExp(0); got != 1 {
		t.Errorf("fastExp(0) = %g, want 1", got)
	}
	if got := fastExp(710); !math.IsInf(got, 1) {
		t.Errorf("fastExp(710) = %g, want +Inf (overflow saturation)", got)
	}
	if got := fastExp(-746); got != 0 {
		t.Errorf("fastExp(-746) = %g, want 0 (underflow saturation)", got)
	}
	// Subnormal results: the Ldexp fallback path must still be accurate.
	for _, x := range []float64{-709, -720, -740, -744.5} {
		want := math.Exp(x)
		got := fastExp(x)
		if want > 0 && relErr(got, want) > 1e-9 {
			t.Errorf("fastExp(%g) = %g, want %g (subnormal-range path)", x, got, want)
		}
	}
}

func TestFastLogMaxRelErr(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	worst := 0.0
	check := func(x float64) {
		want := math.Log(x)
		got := fastLog(x)
		var e float64
		if math.Abs(want) < 0.25 {
			// Near log(1)=0 relative error degenerates; bound the absolute
			// error by the same budget scaled to the series' leading term.
			e = math.Abs(got - want)
			if e > FastLogMaxRelErr {
				t.Fatalf("fastLog(%g) = %g, want %g: abs err %.3e > %.3e", x, got, want, e, FastLogMaxRelErr)
			}
			return
		}
		e = relErr(got, want)
		if e > worst {
			worst = e
		}
		if e > FastLogMaxRelErr {
			t.Fatalf("fastLog(%g) = %g, want %g: rel err %.3e > bound %.3e", x, got, want, e, FastLogMaxRelErr)
		}
	}
	// Operating domain: probabilities/rates in the engines' clamp ranges and
	// the odds-ratio arguments nf*a/(1-a) they produce.
	for i := 0; i < 50000; i++ {
		p := 0.005 + rng.Float64()*0.99
		check(p)
		check(1 - p)
		check(float64(1+rng.Intn(1000)) * p / (1 - p))
	}
	// Full-range sweep across magnitudes including huge/tiny normals.
	for i := 0; i < 50000; i++ {
		check(math.Exp2(rng.Float64()*2040 - 1020))
	}
	t.Logf("fastLog worst rel err: %.3e (bound %.3e)", worst, FastLogMaxRelErr)
}

func TestFastLogEdgeCases(t *testing.T) {
	if !math.IsNaN(fastLog(math.NaN())) {
		t.Error("fastLog(NaN): want NaN")
	}
	if got := fastLog(math.Inf(1)); !math.IsInf(got, 1) {
		t.Errorf("fastLog(+Inf) = %g, want +Inf", got)
	}
	if got := fastLog(0); !math.IsInf(got, -1) {
		t.Errorf("fastLog(0) = %g, want -Inf", got)
	}
	if got := fastLog(math.Copysign(0, -1)); !math.IsInf(got, -1) {
		t.Errorf("fastLog(-0) = %g, want -Inf (math.Log convention)", got)
	}
	if !math.IsNaN(fastLog(-1)) {
		t.Error("fastLog(-1): want NaN")
	}
	if got := fastLog(1); got != 0 {
		t.Errorf("fastLog(1) = %g, want 0", got)
	}
	// Subnormals: normalized before exponent extraction, so accuracy holds.
	// The reference is computed on the normalized value (x·2^52 is a normal
	// float64 for every subnormal x) because this platform's math.Log is
	// itself inaccurate on subnormal inputs.
	for _, x := range []float64{5e-324, 1e-320, 2.2e-308} {
		want := math.Log(x*(1<<52)) - 52*math.Ln2
		got := fastLog(x)
		if relErr(got, want) > 1e-13 {
			t.Errorf("fastLog(subnormal %g) = %g, want %g", x, got, want)
		}
	}
}

// scalarSoftmax is the historical two-pass max-subtraction softmax the
// engines inlined: one exp per lane for the denominator, then a second exp
// per lane for the probability. SoftmaxInto must agree bit-for-bit.
func scalarSoftmax(dst, scores []float64, extraMass float64) {
	m := 0.0
	for _, s := range scores {
		if s > m {
			m = s
		}
	}
	denom := extraMass * math.Exp(-m)
	for _, s := range scores {
		denom += math.Exp(s - m)
	}
	for i, s := range scores {
		dst[i] = math.Exp(s-m) / denom
	}
}

func TestSoftmaxIntoMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(12)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = rng.NormFloat64() * 50
		}
		if trial%3 == 0 {
			// Absent-lane convention: -Inf lanes must get probability 0 and
			// contribute nothing to the denominator.
			scores[rng.Intn(n)] = math.Inf(-1)
		}
		extra := rng.Float64() * 2
		got := make([]float64, n)
		want := make([]float64, n)
		SoftmaxInto(got, scores, extra)
		scalarSoftmax(want, scores, extra)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-15 {
				t.Fatalf("trial %d lane %d: SoftmaxInto %g vs scalar %g (scores=%v extra=%g)",
					trial, i, got[i], want[i], scores, extra)
			}
		}
	}
}

func TestSoftmaxIntoProperties(t *testing.T) {
	scores := []float64{1.5, math.Inf(-1), -2, 0.25}
	dst := make([]float64, len(scores))
	SoftmaxInto(dst, scores, 0.5)
	sum := 0.0
	for i, p := range dst {
		if p < 0 || p > 1 {
			t.Fatalf("lane %d: probability %g out of [0,1]", i, p)
		}
		sum += p
	}
	if dst[1] != 0 {
		t.Errorf("-Inf lane got probability %g, want 0", dst[1])
	}
	if sum >= 1 || sum <= 0 {
		t.Errorf("probabilities sum to %g, want (0,1) with extra mass present", sum)
	}
	// Fast variant obeys the same conventions.
	fdst := make([]float64, len(scores))
	FastSoftmaxInto(fdst, scores, 0.5)
	if fdst[1] != 0 {
		t.Errorf("fast: -Inf lane got probability %g, want 0", fdst[1])
	}
	for i := range fdst {
		if math.Abs(fdst[i]-dst[i]) > 1e-9 {
			t.Errorf("fast lane %d: %g vs exact %g", i, fdst[i], dst[i])
		}
	}
}

func TestExactSlicesMatchScalarLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 257
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64() * 10
	}
	dst := make([]float64, n)
	ExpSlice(dst, x)
	for i := range x {
		if dst[i] != math.Exp(x[i]) {
			t.Fatalf("ExpSlice[%d] = %g, want %g", i, dst[i], math.Exp(x[i]))
		}
	}
	pos := make([]float64, n)
	for i := range pos {
		pos[i] = rng.Float64()*100 + 1e-9
	}
	LogSlice(dst, pos)
	for i := range pos {
		if dst[i] != math.Log(pos[i]) {
			t.Fatalf("LogSlice[%d] = %g, want %g", i, dst[i], math.Log(pos[i]))
		}
	}
	acc := make([]float64, n)
	for i := range acc {
		acc[i] = rng.Float64()*1.2 - 0.1 // includes values outside the clamp range
	}
	LogOddsSlice(dst, acc, 100, 0.005, 0.995)
	for i, a := range acc {
		if a < 0.005 {
			a = 0.005
		} else if a > 0.995 {
			a = 0.995
		}
		if want := math.Log(100 * a / (1 - a)); dst[i] != want {
			t.Fatalf("LogOddsSlice[%d] = %g, want %g", i, dst[i], want)
		}
	}
	num, den := make([]float64, n), make([]float64, n)
	for i := range num {
		num[i] = rng.Float64()*0.98 + 0.01
		den[i] = rng.Float64()*0.98 + 0.01
	}
	LogRatioSlice(dst, num, den)
	for i := range num {
		if want := math.Log(num[i]) - math.Log(den[i]); dst[i] != want {
			t.Fatalf("LogRatioSlice[%d] = %g, want %g", i, dst[i], want)
		}
	}
	SigmoidSlice(dst, x)
	for i := range x {
		if dst[i] != Sigmoid(x[i]) {
			t.Fatalf("SigmoidSlice[%d] = %g, want %g", i, dst[i], Sigmoid(x[i]))
		}
	}
}

func TestSigmoidProperties(t *testing.T) {
	// Matches the historical two-branch form and is overflow-safe.
	for _, x := range []float64{-1000, -50, -1, 0, 1, 50, 1000} {
		got := Sigmoid(x)
		if got < 0 || got > 1 || math.IsNaN(got) {
			t.Fatalf("Sigmoid(%g) = %g out of [0,1]", x, got)
		}
		mirror := Sigmoid(-x)
		if math.Abs(got+mirror-1) > 1e-15 {
			t.Errorf("Sigmoid(%g)+Sigmoid(%g) = %g, want 1", x, -x, got+mirror)
		}
	}
	if Sigmoid(0) != 0.5 {
		t.Errorf("Sigmoid(0) = %g, want 0.5", Sigmoid(0))
	}
	// Fast sigmoid within kernel-level error of exact.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20000; i++ {
		x := rng.NormFloat64() * 30
		e, f := Sigmoid(x), FastSigmoid(x)
		if math.Abs(e-f) > 1e-10 {
			t.Fatalf("FastSigmoid(%g) = %g vs Sigmoid %g", x, f, e)
		}
	}
}

func TestMissLogRatio(t *testing.T) {
	r, f := 0.8, 0.2
	if got, want := MissLogRatio(r, f), math.Log(1-r)-math.Log(1-f); got != want {
		t.Errorf("MissLogRatio(%g, %g) = %g, want %g", r, f, got, want)
	}
}

func TestForConfig(t *testing.T) {
	if ForConfig(false) != Exact {
		t.Error("ForConfig(false) should return Exact")
	}
	if ForConfig(true) != Fast {
		t.Error("ForConfig(true) should return Fast")
	}
	// Every kernel in both sets must be populated.
	for name, k := range map[string]*Kernels{"Exact": Exact, "Fast": Fast} {
		if k.ExpSlice == nil || k.LogSlice == nil || k.LogOddsSlice == nil ||
			k.LogRatioSlice == nil || k.SigmoidSlice == nil || k.SoftmaxInto == nil {
			t.Errorf("%s kernel set has a nil member", name)
		}
	}
}

func TestFastSlicesMatchScalars(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 129
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64() * 10
	}
	dst := make([]float64, n)
	FastExpSlice(dst, x)
	for i := range x {
		if dst[i] != fastExp(x[i]) {
			t.Fatalf("FastExpSlice[%d] disagrees with scalar fastExp", i)
		}
	}
	acc := make([]float64, n)
	for i := range acc {
		acc[i] = rng.Float64()
	}
	FastLogOddsSlice(dst, acc, 10, 0.005, 0.995)
	exact := make([]float64, n)
	LogOddsSlice(exact, acc, 10, 0.005, 0.995)
	for i := range dst {
		if math.Abs(dst[i]-exact[i]) > 1e-9*(1+math.Abs(exact[i])) {
			t.Fatalf("FastLogOddsSlice[%d] = %g vs exact %g", i, dst[i], exact[i])
		}
	}
}
