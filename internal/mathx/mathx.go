// Package mathx provides the batched float64 kernels of the EM hot loops:
// exp, log, log-odds, sigmoid and softmax over contiguous slices, in two
// interchangeable sets.
//
// The Exact set evaluates math.Exp / math.Log per lane — bit-identical to
// the scalar calls the engines used to make inline — but restructured so a
// whole table or span is processed in one pass with every branch hoisted
// out of the loop. That shape is what makes the hot loops batchable at all:
// the per-round tables (provenance log-score terms, extractor likelihood
// ratios, source log-weights) become single kernel calls over staging
// buffers reused across rounds, and the per-item softmax pays one exp per
// candidate instead of two.
//
// The Fast set (fast.go) replaces the transcendentals with polynomial
// approximations carrying a measured, documented maximum relative error —
// the tolerance-gated fast path behind Config.FastMath in the fusion and
// twolayer engines. Both sets are pure elementwise functions: results never
// depend on how a caller chunks a slice across workers, which is what keeps
// the engines' bit-identical-for-any-Workers contract intact under either
// kernel set.
//
// Kernel selection is a value, not a build flag: engines hold a *Kernels
// and call through it, so one process can run exact and fast configurations
// side by side (the FastMath equivalence suites do exactly that).
package mathx

import "math"

// Kernels is one interchangeable kernel set. Engines select a set once per
// run (ForConfig) and call through it; every function is elementwise or
// fixed-order, so results are independent of how callers split slices
// across workers.
type Kernels struct {
	// ExpSlice writes dst[i] = exp(x[i]).
	ExpSlice func(dst, x []float64)
	// LogSlice writes dst[i] = log(x[i]).
	LogSlice func(dst, x []float64)
	// LogOddsSlice writes dst[i] = log(nf * a/(1-a)) with a = acc[i]
	// clamped to [lo, hi] — the per-round provenance/source log-score term.
	LogOddsSlice func(dst, acc []float64, nf, lo, hi float64)
	// LogRatioSlice writes dst[i] = log(num[i]) - log(den[i]) — the
	// per-round extractor likelihood-ratio tables.
	LogRatioSlice func(dst, num, den []float64)
	// SigmoidSlice writes dst[i] = 1/(1+exp(-x[i])), evaluated in the
	// overflow-safe two-branch form.
	SigmoidSlice func(dst, x []float64)
	// SoftmaxInto writes dst[i] = exp(scores[i]-m)/denom with
	// m = max(0, max(scores)) and denom = extraMass*exp(-m) + Σ exp(scores[i]-m),
	// the extra mass being an implicit candidate at score 0 (the engines'
	// unknown-value mass). One exp per lane; the sum runs in slice order.
	SoftmaxInto func(dst, scores []float64, extraMass float64)
}

// Exact is the kernel set built on math.Exp / math.Log: bit-identical to
// the scalar expressions the engines inline historically, just batched.
var Exact = &Kernels{
	ExpSlice:      ExpSlice,
	LogSlice:      LogSlice,
	LogOddsSlice:  LogOddsSlice,
	LogRatioSlice: LogRatioSlice,
	SigmoidSlice:  SigmoidSlice,
	SoftmaxInto:   SoftmaxInto,
}

// Fast is the polynomial kernel set: same signatures, approximate
// transcendentals within the documented bounds (see fast.go).
var Fast = &Kernels{
	ExpSlice:      FastExpSlice,
	LogSlice:      FastLogSlice,
	LogOddsSlice:  FastLogOddsSlice,
	LogRatioSlice: FastLogRatioSlice,
	SigmoidSlice:  FastSigmoidSlice,
	SoftmaxInto:   FastSoftmaxInto,
}

// ForConfig returns the kernel set for a Config.FastMath value: Fast when
// fastMath is set, Exact otherwise.
func ForConfig(fastMath bool) *Kernels {
	if fastMath {
		return Fast
	}
	return Exact
}

// ExpSlice writes dst[i] = math.Exp(x[i]).
func ExpSlice(dst, x []float64) {
	dst = dst[:len(x)]
	for i, v := range x {
		dst[i] = math.Exp(v)
	}
}

// LogSlice writes dst[i] = math.Log(x[i]).
func LogSlice(dst, x []float64) {
	dst = dst[:len(x)]
	for i, v := range x {
		dst[i] = math.Log(v)
	}
}

// LogOddsSlice writes dst[i] = math.Log(nf * a/(1-a)) with a = acc[i]
// clamped to [lo, hi]. The expression is evaluated exactly as the engines'
// scalar form (nf*a/(1-a) then one log), so the exact kernel is
// bit-identical to the historical per-element code.
func LogOddsSlice(dst, acc []float64, nf, lo, hi float64) {
	dst = dst[:len(acc)]
	for i, a := range acc {
		if a < lo {
			a = lo
		} else if a > hi {
			a = hi
		}
		dst[i] = math.Log(nf * a / (1 - a))
	}
}

// LogRatioSlice writes dst[i] = math.Log(num[i]) - math.Log(den[i]).
func LogRatioSlice(dst, num, den []float64) {
	dst = dst[:len(num)]
	den = den[:len(num)]
	for i, v := range num {
		dst[i] = math.Log(v) - math.Log(den[i])
	}
}

// SigmoidSlice writes dst[i] = Sigmoid(x[i]).
func SigmoidSlice(dst, x []float64) {
	dst = dst[:len(x)]
	for i, v := range x {
		dst[i] = Sigmoid(v)
	}
}

// Sigmoid is the scalar logistic function in the overflow-safe two-branch
// form — the one implementation the engines share (the twolayer and
// multitruth copies consolidated here).
func Sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// MissLogRatio is the layer-1 log-likelihood ratio of an extractor NOT
// extracting a statement it processed the source for:
// log(1-recall) - log(1-falsePos). Consolidated here from the twolayer
// engine; the sharded coordinator evaluates the same expression over global
// rates to build each shard's ghost-miss table.
func MissLogRatio(recall, falsePos float64) float64 {
	return math.Log(1-recall) - math.Log(1-falsePos)
}

// SoftmaxInto writes dst[i] = exp(scores[i]-m)/denom over the candidate
// scores, with an implicit extra candidate at score 0 carrying extraMass
// weight: m = max(0, max(scores)), denom = extraMass*exp(-m) + Σ_i
// exp(scores[i]-m), the sum in slice order. This is the engines' max-
// subtraction softmax with the double exp eliminated — each lane's exp is
// computed once, kept, and divided by the denominator it contributed to, so
// the result is bit-identical to the historical two-pass form. A score of
// -Inf marks an absent candidate: its lane contributes exp(-Inf) = 0 to the
// denominator and gets probability 0, which is how callers softmax a fixed-
// width buffer without branching on presence in the loop.
func SoftmaxInto(dst, scores []float64, extraMass float64) {
	dst = dst[:len(scores)]
	if len(scores) == 1 {
		// Single candidate: one of the two exps is exp(±0) = 1 exactly
		// (the lane's when s is the max, the extra mass's when 0 is), so
		// the general path below reduces to these expressions bit for bit
		// with one exp instead of two. Zipf-shaped corpora put a large
		// fraction of items here.
		if s := scores[0]; s > 0 {
			dst[0] = 1 / (extraMass*math.Exp(-s) + 1)
		} else {
			v := math.Exp(s)
			dst[0] = v / (extraMass + v)
		}
		return
	}
	m := 0.0 // the implicit extra-candidate score is 0
	for _, s := range scores {
		if s > m {
			m = s
		}
	}
	denom := extraMass * math.Exp(-m)
	for i, s := range scores {
		v := math.Exp(s - m)
		dst[i] = v
		//lint:ignore kflint/floatsum one candidate list's softmax denominator in fixed slice order — the per-group partial every caller owns whole; identical order across runs.
		denom += v
	}
	for i := range dst {
		dst[i] /= denom
	}
}
