package mathx

import "math"

// The Fast kernel set: polynomial exp and log with a measured, documented
// maximum relative error, for engines running with Config.FastMath. The
// approximations use the classical argument reductions —
//
//	exp(x) = 2^k · exp(r),  k = round(x·log2 e),  r = x − k·ln 2, |r| ≤ ln2/2
//	log(x) = k·ln 2 + log(m),  x = 2^k·m,  m ∈ [√2/2, √2)
//
// — with the reduced interval evaluated by a short Horner polynomial
// (degree-9 Taylor for exp(r); the atanh series in s = (m−1)/(m+1) for
// log(m)). Every lane is a pure function of its input: no lookup tables, no
// state, so fast-kernel results are as worker-count- and shard-count-
// independent as the exact ones.
//
// Special values follow math.Exp / math.Log: NaN propagates, exp(±Inf) is
// +Inf/0, inputs past the overflow/underflow cutoffs saturate to +Inf/0,
// log of 0 / negative / +Inf is -Inf / NaN / +Inf, and subnormal inputs to
// log are normalized before exponent extraction. The edge behavior and the
// error bounds below are pinned by the property tests in fast_test.go.

// FastExpMaxRelErr bounds |fastExp(x)/exp(x) − 1| over the full finite
// domain that does not overflow or underflow ([-745, 709]); the dominant
// term is the degree-9 Taylor truncation at |r| = ln2/2 (≈7·10⁻¹²) plus a
// few ulp of Horner rounding. The property tests sweep the engines'
// operating domain (log-odds sums, probabilities, likelihood ratios) and a
// dense grid of the full domain against this bound.
const FastExpMaxRelErr = 5e-11

// FastLogMaxRelErr bounds the relative error of fastLog over positive
// normal inputs (and |fastLog(x) − log(x)| ≤ FastLogMaxRelErr·|log x| with
// |log x| ≥ ln(√2)/2 away from 1; near 1 the series is exact to the same
// relative order in its leading term, so the bound holds everywhere).
const FastLogMaxRelErr = 5e-12

// FastTol is the documented engine-level equivalence tolerance for the fast
// path: a FastMath run's triple probabilities and provenance/source
// accuracies (all in [0,1]) stay within this absolute bound of the exact
// engine's. The kernels themselves are 4–5 orders of magnitude tighter
// (FastExpMaxRelErr, FastLogMaxRelErr); the headroom absorbs the EM loop
// compounding per-term error over rounds of log-odds sums and parameter
// re-estimation. Pinned by the FastMath equivalence suites in the fusion,
// twolayer and multitruth packages, next to the exact path's RefTol policy.
const FastTol = 1e-6

const (
	expOverflow  = 709.782712893384   // above: exp overflows float64
	expUnderflow = -745.1332191019412 // below: exp underflows to 0
	log2e        = 1.44269504088896340736
	ln2Hi        = 6.93147180369123816490e-01
	ln2Lo        = 1.90821492927058770002e-10
)

// fastExp is the scalar fast exponential. Branches handle only special
// values and the subnormal-result tail; the common path is branch-free
// reduction + Horner + exponent scaling.
func fastExp(x float64) float64 {
	if x != x { // NaN
		return x
	}
	if x > expOverflow {
		return math.Inf(1)
	}
	if x < expUnderflow {
		return 0
	}
	// r = x - k*ln2 via the hi/lo split keeps the reduction error below an
	// ulp of r; |r| <= ln2/2 ≈ 0.3466.
	k := math.Floor(x*log2e + 0.5)
	r := (x - k*ln2Hi) - k*ln2Lo
	// Degree-9 Taylor of exp(r), Horner form.
	p := 1.0 + r*(1.0+r*(0.5+r*(1.0/6+r*(1.0/24+r*(1.0/120+r*(1.0/720+
		r*(1.0/5040+r*(1.0/40320+r*(1.0/362880)))))))))
	ik := int(k)
	if ik < -1021 || ik > 1023 {
		// Subnormal result (or the very top of the range): take the exact
		// but slower scaling path.
		return math.Ldexp(p, ik)
	}
	// 2^k as a float64 by constructing the exponent field directly.
	return p * math.Float64frombits(uint64(1023+ik)<<52)
}

// fastLog is the scalar fast logarithm.
func fastLog(x float64) float64 {
	if x != x || math.IsInf(x, 1) { // NaN, +Inf
		return x
	}
	if x < 0 {
		return math.NaN()
	}
	if x == 0 {
		return math.Inf(-1)
	}
	bits := math.Float64bits(x)
	exp := int(bits >> 52 & 0x7ff)
	k := 0
	if exp == 0 {
		// Subnormal: renormalize so the mantissa extraction below sees a
		// normal number.
		x *= 1 << 52
		bits = math.Float64bits(x)
		exp = int(bits >> 52 & 0x7ff)
		k = -52
	}
	k += exp - 1023
	m := math.Float64frombits(bits&0x000fffffffffffff | 0x3ff0000000000000) // [1, 2)
	if m > math.Sqrt2 {
		m *= 0.5
		k++
	}
	// m in [√2/2, √2]: log(m) = 2·atanh(s), s = (m-1)/(m+1), |s| ≤ 0.1716.
	s := (m - 1) / (m + 1)
	z := s * s
	series := s * (2.0 + z*(2.0/3+z*(2.0/5+z*(2.0/7+z*(2.0/9+z*(2.0/11+z*(2.0/13)))))))
	return float64(k)*ln2Hi + (series + float64(k)*ln2Lo)
}

// FastExpSlice writes dst[i] = fastExp(x[i]).
func FastExpSlice(dst, x []float64) {
	dst = dst[:len(x)]
	for i, v := range x {
		dst[i] = fastExp(v)
	}
}

// FastLogSlice writes dst[i] = fastLog(x[i]).
func FastLogSlice(dst, x []float64) {
	dst = dst[:len(x)]
	for i, v := range x {
		dst[i] = fastLog(v)
	}
}

// FastLogOddsSlice is LogOddsSlice on the fast log.
func FastLogOddsSlice(dst, acc []float64, nf, lo, hi float64) {
	dst = dst[:len(acc)]
	for i, a := range acc {
		if a < lo {
			a = lo
		} else if a > hi {
			a = hi
		}
		dst[i] = fastLog(nf * a / (1 - a))
	}
}

// FastLogRatioSlice is LogRatioSlice on the fast log.
func FastLogRatioSlice(dst, num, den []float64) {
	dst = dst[:len(num)]
	den = den[:len(num)]
	for i, v := range num {
		dst[i] = fastLog(v) - fastLog(den[i])
	}
}

// FastSigmoid is Sigmoid on the fast exponential.
func FastSigmoid(x float64) float64 {
	if x >= 0 {
		z := fastExp(-x)
		return 1 / (1 + z)
	}
	z := fastExp(x)
	return z / (1 + z)
}

// FastSigmoidSlice writes dst[i] = FastSigmoid(x[i]).
func FastSigmoidSlice(dst, x []float64) {
	dst = dst[:len(x)]
	for i, v := range x {
		dst[i] = FastSigmoid(v)
	}
}

// FastSoftmaxInto is SoftmaxInto on the fast exponential: same fixed
// summation order, same -Inf absent-lane convention.
func FastSoftmaxInto(dst, scores []float64, extraMass float64) {
	dst = dst[:len(scores)]
	if len(scores) == 1 {
		// Mirror of SoftmaxInto's single-candidate shortcut: one fastExp
		// instead of two, bit-identical to the general path below because
		// fastExp(±0) = 1 exactly.
		if s := scores[0]; s > 0 {
			dst[0] = 1 / (extraMass*fastExp(-s) + 1)
		} else {
			v := fastExp(s)
			dst[0] = v / (extraMass + v)
		}
		return
	}
	m := 0.0
	for _, s := range scores {
		if s > m {
			m = s
		}
	}
	denom := extraMass * fastExp(-m)
	for i, s := range scores {
		v := fastExp(s - m)
		dst[i] = v
		//lint:ignore kflint/floatsum one candidate list's softmax denominator in fixed slice order — the per-group partial every caller owns whole; identical order across runs.
		denom += v
	}
	for i := range dst {
		dst[i] /= denom
	}
}
