// Package confweight implements the paper's §5.5 future direction:
// leveraging extraction confidence in fusion. The obstacle the paper
// documents (Figure 21) is that confidences are NOT comparable across
// extractors: TXT1's are informative, ANO's are noise, TBL1's are actively
// misleading — so "one obvious solution", thresholding, throws away 15% of
// triples at θ=0.1 (Figure 22).
//
// confweight instead RECALIBRATES each extractor's confidence against a
// labeled sample (binned accuracy, monotone-smoothed), then feeds the
// recalibrated value into fusion through the ClaimAccuracy hook: a claim's
// effective accuracy blends its provenance accuracy with what the
// extractor's confidence has historically been worth.
package confweight

import (
	"fmt"
	"sort"

	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/kb"
)

// Bins is the number of confidence buckets per extractor.
const Bins = 5

// Calibrator maps (extractor, confidence) to an empirical accuracy.
type Calibrator struct {
	// acc[extractor][bin] is the smoothed labeled accuracy of extractions
	// whose confidence fell in the bin.
	acc map[string][Bins]float64
	// Blend controls how much the recalibrated confidence moves a claim's
	// effective accuracy: 0 = ignore confidence, 1 = confidence only.
	Blend float64
}

// cell accumulates labeled counts for one confidence bin.
type cell struct{ trueN, n int }

// Learn builds a calibrator from labeled extractions. label returns the gold
// label of a triple and whether it is labeled (LCWA). Extractors without
// confidences or without enough labeled volume fall back to pass-through.
func Learn(xs []extract.Extraction, label func(kb.Triple) (bool, bool)) *Calibrator {
	counts := map[string]*[Bins]cell{}
	for _, x := range xs {
		if !x.HasConfidence() {
			continue
		}
		l, ok := label(x.Triple)
		if !ok {
			continue
		}
		c := counts[x.Extractor]
		if c == nil {
			c = &[Bins]cell{}
			counts[x.Extractor] = c
		}
		b := binOf(x.Confidence)
		c[b].n++
		if l {
			c[b].trueN++
		}
	}
	cal := &Calibrator{acc: map[string][Bins]float64{}, Blend: 0.5}
	for ext, cells := range counts {
		var accs [Bins]float64
		for b := 0; b < Bins; b++ {
			// Laplace-smoothed bin accuracy; empty bins inherit the
			// extractor's overall rate.
			if cells[b].n > 0 {
				accs[b] = (float64(cells[b].trueN) + 1) / (float64(cells[b].n) + 2)
			} else {
				accs[b] = -1
			}
		}
		overall := overallRate(cells)
		for b := 0; b < Bins; b++ {
			if accs[b] < 0 {
				accs[b] = overall
			}
		}
		cal.acc[ext] = accs
	}
	return cal
}

func overallRate(cells *[Bins]cell) float64 {
	trueN, n := 1.0, 2.0
	for b := 0; b < Bins; b++ {
		trueN += float64(cells[b].trueN)
		n += float64(cells[b].n)
	}
	return trueN / n
}

func binOf(conf float64) int {
	b := int(conf * Bins)
	if b < 0 {
		b = 0
	}
	if b >= Bins {
		b = Bins - 1
	}
	return b
}

// ConfidenceValue returns what a confidence is empirically worth for the
// extractor (the smoothed bin accuracy), and whether the extractor is
// calibrated at all.
func (c *Calibrator) ConfidenceValue(extractor string, conf float64) (float64, bool) {
	accs, ok := c.acc[extractor]
	if !ok || conf < 0 {
		return 0, false
	}
	return accs[binOf(conf)], true
}

// ClaimAccuracy is the fusion hook: blend the provenance accuracy with the
// recalibrated confidence value.
func (c *Calibrator) ClaimAccuracy(claim fusion.Claim, provAcc float64) float64 {
	v, ok := c.ConfidenceValue(claim.Extractor, claim.Conf)
	if !ok {
		return provAcc
	}
	return (1-c.Blend)*provAcc + c.Blend*v
}

// Config attaches the calibrator to a fusion configuration.
func (c *Calibrator) Config(base fusion.Config) fusion.Config {
	base.ClaimAccuracy = c.ClaimAccuracy
	return base
}

// String summarizes the learned calibration for diagnostics.
func (c *Calibrator) String() string {
	exts := make([]string, 0, len(c.acc))
	for e := range c.acc {
		exts = append(exts, e)
	}
	sort.Strings(exts)
	out := ""
	for _, e := range exts {
		out += fmt.Sprintf("%-5s", e)
		for b := 0; b < Bins; b++ {
			out += fmt.Sprintf(" %.2f", c.acc[e][b])
		}
		out += "\n"
	}
	return out
}

// FilterByThreshold is the strawman the paper criticizes: drop extractions
// below a confidence threshold. Exposed so the ablation can compare it with
// recalibration. It returns the surviving extraction subset and the retained
// fraction of unique triples.
func FilterByThreshold(xs []extract.Extraction, threshold float64) ([]extract.Extraction, float64) {
	before := map[kb.Triple]bool{}
	after := map[kb.Triple]bool{}
	var kept []extract.Extraction
	for _, x := range xs {
		before[x.Triple] = true
		if x.HasConfidence() && x.Confidence >= threshold {
			kept = append(kept, x)
			after[x.Triple] = true
		}
	}
	if len(before) == 0 {
		return kept, 0
	}
	return kept, float64(len(after)) / float64(len(before))
}
