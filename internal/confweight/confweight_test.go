package confweight

import (
	"math"
	"testing"

	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/kb"
)

func ex(subj string, conf float64, extractor string) extract.Extraction {
	return extract.Extraction{
		Triple:     kb.Triple{Subject: kb.EntityID(subj), Predicate: "/x/p", Object: kb.StringObject("v")},
		Extractor:  extractor,
		Confidence: conf,
		URL:        "http://u/" + subj,
		Site:       "u",
	}
}

// label marks triples with subject prefix "t" true, "f" false, others
// unlabeled.
func label(tr kb.Triple) (bool, bool) {
	if len(tr.Subject) == 0 {
		return false, false
	}
	switch tr.Subject[0] {
	case 't':
		return true, true
	case 'f':
		return false, true
	default:
		return false, false
	}
}

func TestLearnInformativeExtractor(t *testing.T) {
	var xs []extract.Extraction
	// "GOOD": high conf → true, low conf → false.
	for i := 0; i < 40; i++ {
		xs = append(xs, ex("t-hi", 0.9, "GOOD"), ex("f-lo", 0.1, "GOOD"))
	}
	// "NOISY": confidence unrelated to truth.
	for i := 0; i < 20; i++ {
		xs = append(xs, ex("t-a", 0.9, "NOISY"), ex("f-b", 0.9, "NOISY"),
			ex("t-c", 0.1, "NOISY"), ex("f-d", 0.1, "NOISY"))
	}
	cal := Learn(xs, label)

	hiGood, ok := cal.ConfidenceValue("GOOD", 0.9)
	if !ok {
		t.Fatal("GOOD not calibrated")
	}
	loGood, _ := cal.ConfidenceValue("GOOD", 0.1)
	if hiGood <= loGood {
		t.Errorf("informative extractor: hi=%.2f not above lo=%.2f", hiGood, loGood)
	}
	hiNoisy, _ := cal.ConfidenceValue("NOISY", 0.9)
	loNoisy, _ := cal.ConfidenceValue("NOISY", 0.1)
	if math.Abs(hiNoisy-loNoisy) > 0.15 {
		t.Errorf("uninformative extractor should flatten: hi=%.2f lo=%.2f", hiNoisy, loNoisy)
	}
	if cal.String() == "" {
		t.Error("String() empty")
	}
}

func TestUncalibratedPassThrough(t *testing.T) {
	cal := Learn(nil, label)
	claim := fusion.Claim{Extractor: "UNKNOWN", Conf: 0.9}
	if got := cal.ClaimAccuracy(claim, 0.73); got != 0.73 {
		t.Errorf("pass-through = %v, want 0.73", got)
	}
	noConf := fusion.Claim{Extractor: "GOOD", Conf: -1}
	if got := cal.ClaimAccuracy(noConf, 0.6); got != 0.6 {
		t.Errorf("no-confidence claim should pass through, got %v", got)
	}
}

func TestClaimAccuracyBlend(t *testing.T) {
	var xs []extract.Extraction
	for i := 0; i < 50; i++ {
		xs = append(xs, ex("t-x", 0.9, "E")) // E's 0.9-bin accuracy ≈ 1
	}
	cal := Learn(xs, label)
	cal.Blend = 0.5
	claim := fusion.Claim{Extractor: "E", Conf: 0.9}
	got := cal.ClaimAccuracy(claim, 0.4)
	want := 0.5*0.4 + 0.5*(51.0/52.0)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("blend = %v, want %v", got, want)
	}
	cal.Blend = 0
	if got := cal.ClaimAccuracy(claim, 0.4); got != 0.4 {
		t.Errorf("Blend=0 should return provenance accuracy, got %v", got)
	}
}

func TestConfigAttachesHook(t *testing.T) {
	cal := Learn(nil, label)
	cfg := cal.Config(fusion.PopAccuConfig())
	if cfg.ClaimAccuracy == nil {
		t.Fatal("hook not attached")
	}
	// End-to-end: fusing with the hook must still be valid.
	claims := []fusion.Claim{
		{Triple: kb.Triple{Subject: "s", Predicate: "p", Object: kb.StringObject("a")}, Prov: "p1", Conf: 0.9, Extractor: "E"},
		{Triple: kb.Triple{Subject: "s", Predicate: "p", Object: kb.StringObject("b")}, Prov: "p2", Conf: 0.1, Extractor: "E"},
	}
	res, err := fusion.Fuse(claims, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Triples {
		if f.Probability < 0 || f.Probability > 1 {
			t.Errorf("probability out of range: %+v", f)
		}
	}
}

func TestRecalibrationSteersFusion(t *testing.T) {
	// Two singleton provenances conflict 1-1; the only signal is extractor
	// confidence. E-hi is historically right at high confidence, E-lo
	// historically wrong at low confidence.
	var history []extract.Extraction
	for i := 0; i < 60; i++ {
		history = append(history, ex("t-h", 0.9, "E"), ex("f-l", 0.2, "E"))
	}
	cal := Learn(history, label)

	claims := []fusion.Claim{
		{Triple: kb.Triple{Subject: "item", Predicate: "p", Object: kb.StringObject("hi")}, Prov: "pa", Conf: 0.9, Extractor: "E"},
		{Triple: kb.Triple{Subject: "item", Predicate: "p", Object: kb.StringObject("lo")}, Prov: "pb", Conf: 0.2, Extractor: "E"},
	}
	res := fusion.MustFuse(claims, cal.Config(fusion.PopAccuConfig()))
	var hi, lo float64
	for _, f := range res.Triples {
		switch f.Triple.Object.Str {
		case "hi":
			hi = f.Probability
		case "lo":
			lo = f.Probability
		}
	}
	if hi <= lo {
		t.Errorf("confidence recalibration did not break the tie: hi=%.3f lo=%.3f", hi, lo)
	}

	// Without the hook the conflict is symmetric.
	base := fusion.MustFuse(claims, fusion.PopAccuConfig())
	var bhi, blo float64
	for _, f := range base.Triples {
		switch f.Triple.Object.Str {
		case "hi":
			bhi = f.Probability
		case "lo":
			blo = f.Probability
		}
	}
	if math.Abs(bhi-blo) > 1e-9 {
		t.Errorf("baseline should be symmetric: %v vs %v", bhi, blo)
	}
}

func TestFilterByThreshold(t *testing.T) {
	xs := []extract.Extraction{
		ex("t-a", 0.9, "E"),
		ex("t-b", 0.3, "E"),
		{Triple: kb.Triple{Subject: "c", Predicate: "/x/p", Object: kb.StringObject("v")}, Extractor: "NC", Confidence: -1},
	}
	kept, coverage := FilterByThreshold(xs, 0.5)
	if len(kept) != 1 {
		t.Errorf("kept %d, want 1", len(kept))
	}
	if math.Abs(coverage-1.0/3.0) > 1e-9 {
		t.Errorf("coverage = %v, want 1/3", coverage)
	}
	if _, cov := FilterByThreshold(nil, 0.5); cov != 0 {
		t.Errorf("empty coverage = %v", cov)
	}
}
