package httpapi

import (
	"encoding/json"
	"errors"
	"math"
	"net/url"
	"strings"
	"testing"

	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/kb"
)

func TestExtractionRoundTrip(t *testing.T) {
	xs := []extract.Extraction{
		{
			Triple: kb.Triple{
				Subject:   "/m/0001",
				Predicate: "/people/person/birthplace",
				Object:    kb.EntityObject("/m/0002"),
			},
			Extractor:  "TXT1",
			Pattern:    "born in",
			URL:        "http://a.example/p1",
			Site:       "a.example",
			Confidence: 0.75,
		},
		{
			Triple: kb.Triple{
				Subject:   "/m/0003",
				Predicate: "/people/person/height",
				Object:    kb.NumberObject(1.85),
			},
			Extractor:  "DOM5",
			URL:        "http://b.example/p2",
			Site:       "b.example",
			Confidence: -1,
		},
	}
	for _, x := range xs {
		back, err := FromExtraction(x).ToExtraction()
		if err != nil {
			t.Fatalf("ToExtraction: %v", err)
		}
		if back != x {
			t.Fatalf("round trip changed the extraction:\n got %+v\nwant %+v", back, x)
		}
	}
}

func TestToBatchBadObject(t *testing.T) {
	_, err := ToBatch([]Extraction{
		{Subject: "/m/1", Predicate: "/p", Object: "e:/m/2"},
		{Subject: "/m/1", Predicate: "/p", Object: "garbage"},
	})
	if !errors.Is(err, ErrBadBatch) {
		t.Fatalf("want ErrBadBatch, got %v", err)
	}
	var bad *BadBatchError
	if !errors.As(err, &bad) || bad.Index != 1 {
		t.Fatalf("want BadBatchError at index 1, got %#v", err)
	}
}

func TestCodeSentinelMapping(t *testing.T) {
	sentinels := []error{ErrNotFound, ErrBadBatch, ErrNotReady, ErrBusy, ErrBadRequest}
	for _, s := range sentinels {
		code := CodeForError(s)
		if code == CodeInternal {
			t.Fatalf("sentinel %v mapped to internal", s)
		}
		if got := SentinelForCode(code); !errors.Is(got, s) {
			t.Fatalf("code %q mapped back to %v, want %v", code, got, s)
		}
		// Wrapped sentinels must map identically: producers always wrap.
		if got := CodeForError(&BadBatchError{Index: 0, Reason: "x"}); got != CodeBadBatch {
			t.Fatalf("wrapped BadBatchError mapped to %q", got)
		}
	}
	if SentinelForCode("nonsense") != nil {
		t.Fatal("unknown code must map to nil")
	}
	if CodeForError(errors.New("other")) != CodeInternal {
		t.Fatal("unrelated error must map to internal")
	}
}

// TestFusedProbabilityJSONExact pins the bit-for-bit read contract:
// encoding/json's shortest-form float64 rendering must parse back to the
// identical bits for the awkward probabilities EM produces.
func TestFusedProbabilityJSONExact(t *testing.T) {
	probs := []float64{0, 1, -1, 1.0 / 3, 0.1 + 0.2, 1 - 1e-16, 5e-324, 0.9999999999999999}
	for _, p := range probs {
		row := FromFused(fusion.FusedTriple{
			Triple:      kb.Triple{Subject: "/m/1", Predicate: "/p", Object: kb.StringObject("v")},
			Probability: p,
			Predicted:   p >= 0,
		})
		data, err := json.Marshal(row)
		if err != nil {
			t.Fatal(err)
		}
		var back FusedTriple
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(back.Probability) != math.Float64bits(p) {
			t.Fatalf("probability %v changed bits over JSON: got %v", p, back.Probability)
		}
	}
}

func TestItemPathEscaping(t *testing.T) {
	p := ItemPath("/m/0fkvn", "/government/office/jurisdiction")
	if !strings.HasPrefix(p, PathItems) {
		t.Fatalf("path %q lost the items prefix", p)
	}
	seg := strings.TrimPrefix(p, PathItems)
	if strings.ContainsAny(seg, "/#") {
		t.Fatalf("item segment %q leaks unescaped separators", seg)
	}
	id, err := url.PathUnescape(seg)
	if err != nil {
		t.Fatal(err)
	}
	if id != "/m/0fkvn#/government/office/jurisdiction" {
		t.Fatalf("unescaped id = %q", id)
	}
}
