// Package httpapi is the wire contract of the kfserved fusion service: the
// versioned route set, the JSON request/response DTOs, and the typed errors
// both sides of the HTTP boundary dispatch on. The server (internal/server)
// and the typed Go client (kfusion/client) import THIS package for every
// shape that crosses the wire, so the two cannot drift: a field added here
// is marshalled by one side and unmarshalled by the other in the same
// release, and an error code minted here maps to the same sentinel in both
// processes.
//
// # Routes
//
//	GET  /healthz               liveness (200 as long as the process serves)
//	GET  /readyz                readiness (503 until hydration completes)
//	GET  /v1/status             generation counters and method binding
//	GET  /v1/items/{id}         fused posteriors of one data item
//	GET  /v1/triples?...        fused posteriors filtered by subject/predicate
//	POST /v1/append             journal + apply one extraction batch
//
// {id} is a data item in kb.DataItem.String form — "subject#predicate" —
// path-escaped by the caller (ItemPath does it for you).
//
// # Errors
//
// Error responses carry an ErrorResponse body whose Code is one of the
// Code* constants. SentinelForCode maps a code back to the matching
// sentinel error (ErrNotFound, ErrBadBatch, ErrNotReady, ErrBusy,
// ErrBadRequest), which the client wraps so callers dispatch with
// errors.Is — never by string or identity comparison (the kflint/typederr
// analyzer enforces this tree-wide).
package httpapi

import (
	"errors"
	"net/url"
	"strconv"

	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/kb"
)

// Version is the API version prefix of every data route.
const Version = "v1"

// Route paths. The two probe routes are unversioned by convention
// (orchestrators hardcode them); the data routes live under /v1.
const (
	PathHealthz = "/healthz"
	PathReadyz  = "/readyz"
	PathStatus  = "/" + Version + "/status"
	PathItems   = "/" + Version + "/items/"
	PathTriples = "/" + Version + "/triples"
	PathAppend  = "/" + Version + "/append"
)

// ItemPath returns the read-path URL path for one data item, path-escaping
// the "subject#predicate" id so Freebase-style subjects (which contain '/')
// survive routing.
func ItemPath(subject, predicate string) string {
	return PathItems + url.PathEscape(subject+"#"+predicate)
}

// Typed errors of the serving contract. The server maps each to one HTTP
// status + ErrorResponse code; the client rebuilds the sentinel from the
// code and wraps it, so errors.Is(err, httpapi.ErrNotFound) holds across
// the process boundary. Producers always wrap (never return bare), which is
// why identity comparison is a contract violation.
var (
	// ErrNotFound reports a route or data item the server does not have.
	ErrNotFound = errors.New("httpapi: not found")
	// ErrBadBatch reports an append body the server refused: malformed
	// JSON, an oversized body, an unparsable extraction, or an empty batch.
	ErrBadBatch = errors.New("httpapi: bad batch")
	// ErrNotReady reports a request that arrived before hydration finished
	// (or after the server began shutting down); retry with backoff.
	ErrNotReady = errors.New("httpapi: not ready")
	// ErrBusy reports an append rejected because another append holds the
	// single-writer slot; retry once it completes.
	ErrBusy = errors.New("httpapi: append in progress")
	// ErrBadRequest reports a malformed read request (bad item id, bad
	// query parameter).
	ErrBadRequest = errors.New("httpapi: bad request")
)

// ErrorResponse codes.
const (
	CodeNotFound   = "not_found"
	CodeBadBatch   = "bad_batch"
	CodeNotReady   = "not_ready"
	CodeBusy       = "busy"
	CodeBadRequest = "bad_request"
	CodeInternal   = "internal"
)

// SentinelForCode returns the typed error a wire code stands for, or nil
// for CodeInternal and unknown codes (the client reports those as plain
// status errors).
func SentinelForCode(code string) error {
	switch code {
	case CodeNotFound:
		return ErrNotFound
	case CodeBadBatch:
		return ErrBadBatch
	case CodeNotReady:
		return ErrNotReady
	case CodeBusy:
		return ErrBusy
	case CodeBadRequest:
		return ErrBadRequest
	}
	return nil
}

// CodeForError returns the wire code for a (possibly wrapped) typed error,
// or CodeInternal when err matches no sentinel.
func CodeForError(err error) string {
	switch {
	case errors.Is(err, ErrNotFound):
		return CodeNotFound
	case errors.Is(err, ErrBadBatch):
		return CodeBadBatch
	case errors.Is(err, ErrNotReady):
		return CodeNotReady
	case errors.Is(err, ErrBusy):
		return CodeBusy
	case errors.Is(err, ErrBadRequest):
		return CodeBadRequest
	}
	return CodeInternal
}

// ErrorResponse is the body of every non-2xx data response.
type ErrorResponse struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Extraction is the wire form of one extraction — field-compatible with the
// kfio JSONL record, so a JSONL feed wraps into an AppendRequest with
// nothing but `jq -s '{extractions: .}'`. Confidence -1 means "extractor
// reports none", as everywhere in the pipeline; the simulator's error
// attribution never crosses the wire (it is ground truth, not data).
type Extraction struct {
	Subject   string `json:"s"`
	Predicate string `json:"p"`
	// Object is in kb.Object.String tagged form: "e:/m/x", "s:text", "n:3".
	Object    string  `json:"o"`
	Extractor string  `json:"extractor"`
	Pattern   string  `json:"pattern,omitempty"`
	URL       string  `json:"url"`
	Site      string  `json:"site"`
	Conf      float64 `json:"conf"`
}

// ToExtraction converts the wire form to the pipeline's extraction type.
func (e Extraction) ToExtraction() (extract.Extraction, error) {
	obj, err := kb.ParseObject(e.Object)
	if err != nil {
		return extract.Extraction{}, err
	}
	return extract.Extraction{
		Triple: kb.Triple{
			Subject:   kb.EntityID(e.Subject),
			Predicate: kb.PredicateID(e.Predicate),
			Object:    obj,
		},
		Extractor:  e.Extractor,
		Pattern:    e.Pattern,
		URL:        e.URL,
		Site:       e.Site,
		Confidence: e.Conf,
	}, nil
}

// FromExtraction converts a pipeline extraction to the wire form.
func FromExtraction(x extract.Extraction) Extraction {
	return Extraction{
		Subject:   string(x.Triple.Subject),
		Predicate: string(x.Triple.Predicate),
		Object:    x.Triple.Object.String(),
		Extractor: x.Extractor,
		Pattern:   x.Pattern,
		URL:       x.URL,
		Site:      x.Site,
		Conf:      x.Confidence,
	}
}

// ToBatch converts a wire batch, reporting the first unparsable record
// wrapped in ErrBadBatch.
func ToBatch(es []Extraction) ([]extract.Extraction, error) {
	out := make([]extract.Extraction, 0, len(es))
	for i, e := range es {
		x, err := e.ToExtraction()
		if err != nil {
			return nil, &BadBatchError{Index: i, Reason: err.Error()}
		}
		out = append(out, x)
	}
	return out, nil
}

// BadBatchError is ErrBadBatch with the offending record's position; it
// unwraps to the sentinel so errors.Is(err, ErrBadBatch) holds.
type BadBatchError struct {
	Index  int
	Reason string
}

func (e *BadBatchError) Error() string {
	return "httpapi: bad batch: extraction " + strconv.Itoa(e.Index) + ": " + e.Reason
}

func (e *BadBatchError) Unwrap() error { return ErrBadBatch }

// FusedTriple is the wire form of one fused posterior row. Probability is
// the exact float64 the fusion engine computed: encoding/json renders
// float64 in shortest round-trip form, so a read over HTTP is bit-for-bit
// the in-process result.
type FusedTriple struct {
	Subject   string `json:"s"`
	Predicate string `json:"p"`
	Object    string `json:"o"`
	// Probability is the predicted truthfulness in [0,1], -1 when the
	// provenance filters removed all evidence (Predicted false).
	Probability     float64 `json:"prob"`
	Predicted       bool    `json:"predicted"`
	Provenances     int     `json:"provenances"`
	ItemProvenances int     `json:"item_provenances"`
	Extractors      int     `json:"extractors"`
}

// FromFused converts a fusion output row to the wire form.
func FromFused(t fusion.FusedTriple) FusedTriple {
	return FusedTriple{
		Subject:         string(t.Triple.Subject),
		Predicate:       string(t.Triple.Predicate),
		Object:          t.Triple.Object.String(),
		Probability:     t.Probability,
		Predicted:       t.Predicted,
		Provenances:     t.Provenances,
		ItemProvenances: t.ItemProvenances,
		Extractors:      t.Extractors,
	}
}

// ItemResponse is the GET /v1/items/{id} body: every fused candidate value
// of one data item, in the generation's deterministic result order.
type ItemResponse struct {
	Subject    string        `json:"s"`
	Predicate  string        `json:"p"`
	Generation int           `json:"generation"`
	Triples    []FusedTriple `json:"triples"`
}

// TriplesResponse is the GET /v1/triples body. Total counts the matches
// before the limit was applied, so a truncated page is detectable.
type TriplesResponse struct {
	Generation int           `json:"generation"`
	Total      int           `json:"total"`
	Triples    []FusedTriple `json:"triples"`
}

// AppendRequest is the POST /v1/append body.
type AppendRequest struct {
	Extractions []Extraction `json:"extractions"`
}

// AppendResponse reports the generation the append published.
type AppendResponse struct {
	// Generation is the published generation (the store's batch count).
	Generation int `json:"generation"`
	// Added is the number of extractions folded in.
	Added int `json:"added"`
	// Triples is the fused triple count of the new generation.
	Triples int `json:"triples"`
	// Rounds is the EM round count of the re-fuse.
	Rounds int `json:"rounds"`
}

// StatusResponse is the GET /v1/status body.
type StatusResponse struct {
	Method     string `json:"method"`
	Ready      bool   `json:"ready"`
	Generation int    `json:"generation"`
	Consumed   int    `json:"consumed"`
	Triples    int    `json:"triples"`
}

// ReadyResponse is the GET /readyz body.
type ReadyResponse struct {
	Ready      bool `json:"ready"`
	Generation int  `json:"generation"`
}

// HealthResponse is the GET /healthz body.
type HealthResponse struct {
	Status string `json:"status"`
}
