package kb

// Hierarchy records containment between entity values, e.g. the location
// chain San Francisco ⊂ California ⊂ USA ⊂ North America of §5.4. The world
// generator populates it for hierarchical predicates; the evaluation uses it
// to recognize specific/general "errors", and the hierval extension uses it
// to aggregate support along ancestor chains.
type Hierarchy struct {
	parent map[EntityID]EntityID
	depth  map[EntityID]int
}

// NewHierarchy returns an empty hierarchy.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{parent: make(map[EntityID]EntityID), depth: make(map[EntityID]int)}
}

// SetParent records that child is directly contained in parent. Cycles are
// the caller's responsibility to avoid; the generator builds trees only.
func (h *Hierarchy) SetParent(child, parent EntityID) {
	h.parent[child] = parent
	h.depth = nil // invalidate memoized depths
}

// Parent returns the direct parent of e, or "" if e is a root or unknown.
func (h *Hierarchy) Parent(e EntityID) EntityID { return h.parent[e] }

// Ancestors returns the chain of ancestors of e from direct parent to root.
func (h *Hierarchy) Ancestors(e EntityID) []EntityID {
	var out []EntityID
	seen := map[EntityID]bool{e: true}
	for cur := h.parent[e]; cur != "" && !seen[cur]; cur = h.parent[cur] {
		out = append(out, cur)
		seen[cur] = true
	}
	return out
}

// IsAncestor reports whether anc is a (transitive) ancestor of e.
func (h *Hierarchy) IsAncestor(anc, e EntityID) bool {
	seen := map[EntityID]bool{e: true}
	for cur := h.parent[e]; cur != "" && !seen[cur]; cur = h.parent[cur] {
		if cur == anc {
			return true
		}
		seen[cur] = true
	}
	return false
}

// Related reports whether a and b lie on one containment chain (either may be
// the ancestor), which is how the paper's error analysis classifies
// "specific/general value" mistakes (Figure 17).
func (h *Hierarchy) Related(a, b EntityID) bool {
	if a == b {
		return true
	}
	return h.IsAncestor(a, b) || h.IsAncestor(b, a)
}

// Depth returns the number of ancestors of e (0 for roots and unknowns).
func (h *Hierarchy) Depth(e EntityID) int {
	return len(h.Ancestors(e))
}

// Len reports the number of child→parent links.
func (h *Hierarchy) Len() int { return len(h.parent) }
