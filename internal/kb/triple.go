// Package kb implements the Freebase-like knowledge-base substrate the paper
// builds on: RDF-style (subject, predicate, object) triples over a typed
// ontology, an in-memory triple store with the indexes knowledge fusion
// needs, and the notion of a data item — a (subject, predicate) pair.
//
// The paper stores knowledge "following the data format and ontology in
// Freebase" (§3.1.1): entities carry IDs, belong to types arranged in a
// shallow two-level hierarchy, and predicates are typed and either functional
// (one true value per data item) or non-functional (several).
package kb

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// EntityID identifies an entity, in Freebase MID style, e.g. "/m/07r1h".
type EntityID string

// PredicateID identifies a predicate, e.g. "/people/person/birth_date".
type PredicateID string

// TypeID identifies an entity type in the two-level hierarchy, e.g.
// "/people/person".
type TypeID string

// ObjectKind discriminates the three object representations the paper
// observes: Freebase entities, raw strings, and numbers (§3.1.1 counts 23M
// entity objects, 80M strings, 1M numbers).
type ObjectKind uint8

const (
	// KindEntity marks an object that references an entity by ID.
	KindEntity ObjectKind = iota
	// KindString marks a raw string object (names, descriptions, addresses).
	KindString
	// KindNumber marks a numeric object.
	KindNumber
)

// String returns a short human-readable name for the kind.
func (k ObjectKind) String() string {
	switch k {
	case KindEntity:
		return "entity"
	case KindString:
		return "string"
	case KindNumber:
		return "number"
	default:
		return fmt.Sprintf("ObjectKind(%d)", uint8(k))
	}
}

// Object is a triple's value. Objects are small comparable values so they can
// key maps directly; exactly one of Str / Num is meaningful depending on Kind
// (entity references store their EntityID in Str).
type Object struct {
	Kind ObjectKind
	Str  string
	Num  float64
}

// EntityObject returns an Object referencing the entity id.
func EntityObject(id EntityID) Object { return Object{Kind: KindEntity, Str: string(id)} }

// StringObject returns a raw-string Object.
func StringObject(s string) Object { return Object{Kind: KindString, Str: s} }

// NumberObject returns a numeric Object.
func NumberObject(v float64) Object { return Object{Kind: KindNumber, Num: v} }

// Entity returns the referenced entity ID and whether the object is an
// entity reference.
func (o Object) Entity() (EntityID, bool) {
	if o.Kind == KindEntity {
		return EntityID(o.Str), true
	}
	return "", false
}

// IsZero reports whether the object is the zero Object, which is never a
// legal value.
func (o Object) IsZero() bool { return o == Object{} }

// String renders the object in a compact tagged form used in logs and JSONL
// corpora, e.g. "e:/m/07r1h", "s:Syracuse NY", "n:1986".
func (o Object) String() string {
	switch o.Kind {
	case KindEntity:
		return "e:" + o.Str
	case KindNumber:
		return "n:" + strconv.FormatFloat(o.Num, 'g', -1, 64)
	default:
		return "s:" + o.Str
	}
}

// ParseObject parses the tagged form produced by Object.String.
func ParseObject(s string) (Object, error) {
	if len(s) < 2 || s[1] != ':' {
		return Object{}, fmt.Errorf("kb: malformed object %q", s)
	}
	body := s[2:]
	switch s[0] {
	case 'e':
		return EntityObject(EntityID(body)), nil
	case 's':
		return StringObject(body), nil
	case 'n':
		v, err := strconv.ParseFloat(body, 64)
		if err != nil {
			return Object{}, fmt.Errorf("kb: malformed number object %q: %v", s, err)
		}
		return NumberObject(v), nil
	default:
		return Object{}, fmt.Errorf("kb: unknown object kind in %q", s)
	}
}

// Triple is one knowledge statement: (subject, predicate, object).
type Triple struct {
	Subject   EntityID
	Predicate PredicateID
	Object    Object
}

// Item returns the triple's data item — the (subject, predicate) pair that
// plays the role of a data-fusion "data item" (§3.1.1).
func (t Triple) Item() DataItem { return DataItem{Subject: t.Subject, Predicate: t.Predicate} }

// String renders the triple as "(subject, predicate, object)".
func (t Triple) String() string {
	return fmt.Sprintf("(%s, %s, %s)", t.Subject, t.Predicate, t.Object)
}

// ParseTriple parses the tab-separated form "subject\tpredicate\tobject"
// with the object in Object.String tagged syntax.
func ParseTriple(s string) (Triple, error) {
	parts := strings.Split(s, "\t")
	if len(parts) != 3 {
		return Triple{}, fmt.Errorf("kb: malformed triple %q: want 3 tab-separated fields, got %d", s, len(parts))
	}
	obj, err := ParseObject(parts[2])
	if err != nil {
		return Triple{}, err
	}
	return Triple{Subject: EntityID(parts[0]), Predicate: PredicateID(parts[1]), Object: obj}, nil
}

// Encode renders the triple in the tab-separated form read by ParseTriple.
func (t Triple) Encode() string {
	return string(t.Subject) + "\t" + string(t.Predicate) + "\t" + t.Object.String()
}

// DataItem is a (subject, predicate) pair: the unit for which fusion decides
// among conflicting values.
type DataItem struct {
	Subject   EntityID
	Predicate PredicateID
}

// String renders the data item as "subject#predicate".
func (d DataItem) String() string { return string(d.Subject) + "#" + string(d.Predicate) }

// fnvHash64 is FNV-1a over multi-field values: each call folds one string
// into the running hash and then a field terminator, so field boundaries
// cannot collide ("ab"+"c" vs "a"+"bc").
func fnvHash64(h uint64, s string) uint64 {
	const prime64 = 1099511628211
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= 0xff
	h *= prime64
	return h
}

const fnvOffset64 = 14695981039346656037

// Hash returns a deterministic field-wise hash of the data item. It is the
// partitioning hash the fusion pipeline uses instead of hashing the String()
// form, so no intermediate string is allocated.
func (d DataItem) Hash() uint64 {
	h := fnvHash64(fnvOffset64, string(d.Subject))
	return fnvHash64(h, string(d.Predicate))
}

// Hash returns a deterministic field-wise hash of the object. Objects that
// compare equal with == hash equal; -0 is folded onto +0 because the two
// compare equal as float64s.
func (o Object) Hash() uint64 {
	h := fnvHash64(fnvOffset64, o.Str)
	const prime64 = 1099511628211
	h ^= uint64(o.Kind)
	h *= prime64
	num := o.Num
	if num == 0 {
		num = 0 // normalize -0
	}
	bits := math.Float64bits(num)
	for i := 0; i < 64; i += 8 {
		h ^= (bits >> i) & 0xff
		h *= prime64
	}
	return h
}

// Hash returns a deterministic field-wise hash of the triple, equal for equal
// triples. Like DataItem.Hash it avoids building the Encode() string.
func (t Triple) Hash() uint64 {
	h := fnvHash64(fnvOffset64, string(t.Subject))
	h = fnvHash64(h, string(t.Predicate))
	const prime64 = 1099511628211
	h *= prime64
	h ^= t.Object.Hash()
	h *= prime64
	return h
}

// WithObject completes the data item into a triple with the given object.
func (d DataItem) WithObject(o Object) Triple {
	return Triple{Subject: d.Subject, Predicate: d.Predicate, Object: o}
}
