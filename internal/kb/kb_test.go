package kb

import (
	"math"
	"strconv"
	"testing"
	"testing/quick"
)

func TestObjectConstructorsAndAccessors(t *testing.T) {
	e := EntityObject("/m/07r1h")
	if id, ok := e.Entity(); !ok || id != "/m/07r1h" {
		t.Errorf("EntityObject round trip: got (%q,%v)", id, ok)
	}
	s := StringObject("Syracuse NY")
	if _, ok := s.Entity(); ok {
		t.Error("string object claimed to be an entity")
	}
	n := NumberObject(1986)
	if n.Kind != KindNumber || n.Num != 1986 {
		t.Errorf("NumberObject: %+v", n)
	}
	if (Object{}).IsZero() != true || e.IsZero() {
		t.Error("IsZero misclassified")
	}
}

func TestObjectStringParseRoundTrip(t *testing.T) {
	cases := []Object{
		EntityObject("/m/0abc"),
		StringObject("hello world"),
		StringObject(""),
		NumberObject(3.25),
		NumberObject(-17),
	}
	for _, o := range cases {
		got, err := ParseObject(o.String())
		if err != nil {
			t.Fatalf("ParseObject(%q): %v", o.String(), err)
		}
		if got != o {
			t.Errorf("round trip %v -> %q -> %v", o, o.String(), got)
		}
	}
}

func TestParseObjectErrors(t *testing.T) {
	for _, bad := range []string{"", "e", "x:oops", "n:notanumber", "plain"} {
		if _, err := ParseObject(bad); err == nil {
			t.Errorf("ParseObject(%q) succeeded, want error", bad)
		}
	}
}

func TestTripleEncodeParseRoundTrip(t *testing.T) {
	tr := Triple{Subject: "/m/07r1h", Predicate: "/people/person/birth_date", Object: StringObject("7/3/1962")}
	got, err := ParseTriple(tr.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != tr {
		t.Errorf("round trip: got %v want %v", got, tr)
	}
	if _, err := ParseTriple("only\ttwo"); err == nil {
		t.Error("ParseTriple accepted malformed input")
	}
	if _, err := ParseTriple("a\tb\tq:bad"); err == nil {
		t.Error("ParseTriple accepted bad object")
	}
}

func TestTripleItem(t *testing.T) {
	tr := Triple{Subject: "s", Predicate: "p", Object: NumberObject(1)}
	d := tr.Item()
	if d.Subject != "s" || d.Predicate != "p" {
		t.Errorf("Item() = %v", d)
	}
	if d.WithObject(NumberObject(1)) != tr {
		t.Error("WithObject did not reconstruct the triple")
	}
}

func TestOntologyRegistrationAndLookup(t *testing.T) {
	o := NewOntology()
	o.AddType(Type{ID: "/people/person", Domain: "people", Name: "person"})
	o.AddType(Type{ID: "/film/film", Domain: "film", Name: "film"})
	o.AddPredicate(Predicate{ID: "/people/person/birth_date", SubjectType: "/people/person", Domain: DomainString, Functional: true})
	o.AddPredicate(Predicate{ID: "/people/person/children", SubjectType: "/people/person", Domain: DomainEntity, ObjectType: "/people/person"})
	o.AddEntity(Entity{ID: "/m/1", Name: "Tom Cruise", Types: []TypeID{"/people/person"}})
	o.AddEntity(Entity{ID: "/m/2", Name: "Top Gun", Types: []TypeID{"/film/film"}})

	if o.NumTypes() != 2 || o.NumPredicates() != 2 || o.NumEntities() != 2 {
		t.Fatalf("counts: %d types %d preds %d entities", o.NumTypes(), o.NumPredicates(), o.NumEntities())
	}
	if o.Type("/people/person") == nil || o.Type("/nope") != nil {
		t.Error("Type lookup wrong")
	}
	p := o.Predicate("/people/person/birth_date")
	if p == nil || !p.Functional || p.Cardinality != 1 {
		t.Errorf("functional predicate defaults: %+v", p)
	}
	np := o.Predicate("/people/person/children")
	if np == nil || np.Functional || np.Cardinality != 2 {
		t.Errorf("non-functional predicate defaults: %+v", np)
	}
	if got := o.EntitiesOfType("/people/person"); len(got) != 1 || got[0] != "/m/1" {
		t.Errorf("EntitiesOfType: %v", got)
	}
	preds := o.PredicatesOfType("/people/person")
	if len(preds) != 2 {
		t.Fatalf("PredicatesOfType: %v", preds)
	}
	if preds[0].ID > preds[1].ID {
		t.Error("PredicatesOfType not sorted")
	}
}

func TestOntologyEntityTypesCopied(t *testing.T) {
	o := NewOntology()
	types := []TypeID{"/a/b"}
	o.AddType(Type{ID: "/a/b"})
	o.AddEntity(Entity{ID: "/m/x", Types: types})
	types[0] = "/mutated"
	if got := o.Entity("/m/x").Types[0]; got != "/a/b" {
		t.Errorf("ontology aliased caller slice: %v", got)
	}
}

func TestStoreAddDedupAndIndexes(t *testing.T) {
	s := NewStore()
	t1 := Triple{Subject: "/m/1", Predicate: "p", Object: StringObject("a")}
	t2 := Triple{Subject: "/m/1", Predicate: "p", Object: StringObject("b")}
	t3 := Triple{Subject: "/m/1", Predicate: "q", Object: NumberObject(2)}
	if !s.Add(t1) || !s.Add(t2) || !s.Add(t3) {
		t.Fatal("fresh Add returned false")
	}
	if s.Add(t1) {
		t.Error("duplicate Add returned true")
	}
	if s.Len() != 3 || s.NumItems() != 2 {
		t.Errorf("Len=%d NumItems=%d", s.Len(), s.NumItems())
	}
	if !s.Has(t1) || s.Has(Triple{Subject: "/m/1", Predicate: "p", Object: StringObject("z")}) {
		t.Error("Has wrong")
	}
	if !s.HasItem(t1.Item()) || s.HasItem(DataItem{Subject: "/m/9", Predicate: "p"}) {
		t.Error("HasItem wrong")
	}
	if got := s.Objects(t1.Item()); len(got) != 2 {
		t.Errorf("Objects: %v", got)
	}
	if got := s.PredicatesOf("/m/1"); len(got) != 2 {
		t.Errorf("PredicatesOf: %v", got)
	}
}

func TestStoreDeterministicIteration(t *testing.T) {
	build := func() *Store {
		s := NewStore()
		s.Add(Triple{Subject: "/m/2", Predicate: "p", Object: StringObject("x")})
		s.Add(Triple{Subject: "/m/1", Predicate: "q", Object: NumberObject(5)})
		s.Add(Triple{Subject: "/m/1", Predicate: "p", Object: StringObject("y")})
		return s
	}
	a, b := build().Triples(), build().Triples()
	if len(a) != 3 {
		t.Fatalf("Triples len=%d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("iteration not deterministic: %v vs %v", a, b)
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].Subject > a[i].Subject {
			t.Fatal("Triples not sorted by subject")
		}
	}
	var items []DataItem
	build().ForEachItem(func(d DataItem, objs []Object) { items = append(items, d) })
	if len(items) != 3 {
		t.Fatalf("ForEachItem visited %d items", len(items))
	}
}

func TestHierarchyChains(t *testing.T) {
	h := NewHierarchy()
	h.SetParent("/m/sf", "/m/ca")
	h.SetParent("/m/ca", "/m/usa")
	h.SetParent("/m/usa", "/m/na")

	anc := h.Ancestors("/m/sf")
	want := []EntityID{"/m/ca", "/m/usa", "/m/na"}
	if len(anc) != len(want) {
		t.Fatalf("Ancestors = %v", anc)
	}
	for i := range want {
		if anc[i] != want[i] {
			t.Fatalf("Ancestors = %v, want %v", anc, want)
		}
	}
	if !h.IsAncestor("/m/usa", "/m/sf") || h.IsAncestor("/m/sf", "/m/usa") {
		t.Error("IsAncestor wrong")
	}
	if !h.Related("/m/sf", "/m/na") || !h.Related("/m/na", "/m/sf") || !h.Related("/m/sf", "/m/sf") {
		t.Error("Related should hold along chains and reflexively")
	}
	if h.Related("/m/sf", "/m/other") {
		t.Error("Related held for unrelated entities")
	}
	if h.Depth("/m/sf") != 3 || h.Depth("/m/na") != 0 {
		t.Errorf("Depth: sf=%d na=%d", h.Depth("/m/sf"), h.Depth("/m/na"))
	}
	if h.Len() != 3 {
		t.Errorf("Len=%d", h.Len())
	}
}

func TestHierarchyCycleSafe(t *testing.T) {
	h := NewHierarchy()
	h.SetParent("a", "b")
	h.SetParent("b", "a") // malformed input must not hang
	if got := h.Ancestors("a"); len(got) != 1 || got[0] != "b" {
		t.Errorf("cycle Ancestors = %v", got)
	}
	if h.IsAncestor("zzz", "a") {
		t.Error("IsAncestor found absent ancestor in cycle")
	}
}

func TestObjectStringParseQuick(t *testing.T) {
	f := func(s string) bool {
		// Tab would break triple encoding but Object.String never emits tabs
		// from the tag; strings themselves may contain anything but tabs and
		// newlines in our corpora. Restrict the property accordingly.
		for _, r := range s {
			if r == '\t' || r == '\n' {
				return true
			}
		}
		o := StringObject(s)
		got, err := ParseObject(o.String())
		return err == nil && got == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFieldwiseHashStableAndEqual(t *testing.T) {
	d := DataItem{Subject: "/m/07r1h", Predicate: "/people/person/birth_date"}
	if d.Hash() != d.Hash() {
		t.Error("DataItem.Hash not stable")
	}
	tr := Triple{Subject: d.Subject, Predicate: d.Predicate, Object: NumberObject(1986)}
	if tr.Hash() != tr.Hash() {
		t.Error("Triple.Hash not stable")
	}
	same := Triple{Subject: "/m/07r1h", Predicate: "/people/person/birth_date", Object: NumberObject(1986)}
	if tr.Hash() != same.Hash() {
		t.Error("equal triples hash differently")
	}
}

func TestFieldwiseHashFieldBoundaries(t *testing.T) {
	// Concatenation across the subject/predicate boundary must not collide.
	a := DataItem{Subject: "ab", Predicate: "c"}
	b := DataItem{Subject: "a", Predicate: "bc"}
	if a.Hash() == b.Hash() {
		t.Error("DataItem.Hash collides across field boundary")
	}
	// Object kind and numeric value must both matter.
	base := Triple{Subject: "s", Predicate: "p"}
	s := base
	s.Object = StringObject("1986")
	n := base
	n.Object = NumberObject(1986)
	if s.Hash() == n.Hash() {
		t.Error("Triple.Hash ignores object kind")
	}
	n2 := base
	n2.Object = NumberObject(1987)
	if n.Hash() == n2.Hash() {
		t.Error("Triple.Hash ignores numeric value")
	}
	// 0.0 and -0.0 compare equal as float64, so the objects are == and
	// must hash equal (a partitioning hash may never split one map key).
	pz, nz := NumberObject(0.0), NumberObject(math.Copysign(0, -1))
	if pz != nz {
		t.Fatal("0.0 and -0.0 objects should compare equal")
	}
	if pz.Hash() != nz.Hash() {
		t.Error("Object.Hash splits 0.0 and -0.0")
	}
}

func TestFieldwiseHashSpreads(t *testing.T) {
	// A weak sanity check that hashes of near-identical items differ: 1000
	// consecutive subjects should produce 1000 distinct hashes.
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		d := DataItem{Subject: EntityID("/m/e" + strconv.Itoa(i)), Predicate: "/p"}
		seen[d.Hash()] = true
	}
	if len(seen) != 1000 {
		t.Errorf("DataItem.Hash: %d distinct hashes for 1000 items", len(seen))
	}
}
