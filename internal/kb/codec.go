package kb

import (
	"fmt"

	"kfusion/internal/wire"
)

// EncodeTriples writes a length-prefixed triple table in the wire dialect.
// Objects serialize through their tagged String form, which ParseObject
// inverts losslessly, so a decoded table is field-identical to the input.
func EncodeTriples(w *wire.Writer, ts []Triple) {
	w.Int(len(ts))
	for i := range ts {
		w.String(string(ts[i].Subject))
		w.String(string(ts[i].Predicate))
		w.String(ts[i].Object.String())
	}
}

// DecodeTriples reads a table written by EncodeTriples.
func DecodeTriples(r *wire.Reader) ([]Triple, error) {
	n := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	// A triple costs at least three length bytes, so a count beyond the
	// remaining input is corrupt — rejected before allocating.
	if n > r.Remaining() {
		return nil, fmt.Errorf("kb: triple count %d exceeds input: %w", n, wire.ErrTruncated)
	}
	out := make([]Triple, n)
	for i := range out {
		subj := r.String()
		pred := r.String()
		objStr := r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		obj, err := ParseObject(objStr)
		if err != nil {
			return nil, fmt.Errorf("kb: triple %d: %w", i, err)
		}
		out[i] = Triple{Subject: EntityID(subj), Predicate: PredicateID(pred), Object: obj}
	}
	return out, nil
}

// EncodeItems writes a length-prefixed data-item table.
func EncodeItems(w *wire.Writer, items []DataItem) {
	w.Int(len(items))
	for i := range items {
		w.String(string(items[i].Subject))
		w.String(string(items[i].Predicate))
	}
}

// DecodeItems reads a table written by EncodeItems.
func DecodeItems(r *wire.Reader) ([]DataItem, error) {
	n := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > r.Remaining() {
		return nil, fmt.Errorf("kb: item count %d exceeds input: %w", n, wire.ErrTruncated)
	}
	out := make([]DataItem, n)
	for i := range out {
		out[i] = DataItem{Subject: EntityID(r.String()), Predicate: PredicateID(r.String())}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
