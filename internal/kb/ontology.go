package kb

import (
	"fmt"
	"sort"
)

// ValueDomain describes what kind of values a predicate takes, which the
// world generator uses to synthesize plausible true and confusable false
// values and the extractors use to render content.
type ValueDomain uint8

const (
	// DomainEntity predicates point at other entities (e.g. birth place).
	DomainEntity ValueDomain = iota
	// DomainString predicates carry free strings (e.g. description).
	DomainString
	// DomainNumber predicates carry numbers (e.g. release year, height).
	DomainNumber
)

// String returns a short name for the domain.
func (d ValueDomain) String() string {
	switch d {
	case DomainEntity:
		return "entity"
	case DomainString:
		return "string"
	case DomainNumber:
		return "number"
	default:
		return fmt.Sprintf("ValueDomain(%d)", uint8(d))
	}
}

// Predicate is the schema entry for one predicate. A predicate is associated
// with a single subject type (§3.1.1: "typically a predicate is associated
// with a single type and can be considered as the attribute of entities in
// that type").
type Predicate struct {
	ID          PredicateID
	SubjectType TypeID
	Domain      ValueDomain
	// ObjectType constrains entity-valued objects to a type (e.g. birth
	// place values are locations). Empty for non-entity domains.
	ObjectType TypeID
	// Functional reports whether the predicate admits a single true value
	// per subject (birth date) or several (children, acted-in).
	Functional bool
	// Cardinality is the expected number of true values per subject for
	// non-functional predicates (the "degree of functionality" of §5.3).
	// Functional predicates have Cardinality 1.
	Cardinality float64
	// Hierarchical marks predicates whose entity values live in a
	// containment hierarchy (e.g. birth place: city ⊂ state ⊂ country),
	// enabling the specific/general phenomena of §4.4 and §5.4.
	Hierarchical bool
}

// Type is the schema entry for one entity type in the shallow two-level
// hierarchy, e.g. domain "people", name "person", ID "/people/person".
type Type struct {
	ID     TypeID
	Domain string // first hierarchy level, e.g. "people"
	Name   string // second hierarchy level, e.g. "person"
}

// Entity is a known entity: an ID, a canonical name, possible alias mentions
// (used by the linkage simulator), and the types it belongs to.
type Entity struct {
	ID    EntityID
	Name  string
	Types []TypeID
}

// Ontology is the schema shared by the ground-truth world, the Freebase
// snapshot and the extractors: types, predicates, entities.
type Ontology struct {
	types      map[TypeID]*Type
	predicates map[PredicateID]*Predicate
	entities   map[EntityID]*Entity

	typeOrder []TypeID
	predOrder []PredicateID
	entOrder  []EntityID

	byType map[TypeID][]EntityID
}

// NewOntology returns an empty ontology.
func NewOntology() *Ontology {
	return &Ontology{
		types:      make(map[TypeID]*Type),
		predicates: make(map[PredicateID]*Predicate),
		entities:   make(map[EntityID]*Entity),
		byType:     make(map[TypeID][]EntityID),
	}
}

// AddType registers a type. Re-adding an existing ID overwrites its schema
// but keeps ordering stable.
func (o *Ontology) AddType(t Type) {
	if _, ok := o.types[t.ID]; !ok {
		o.typeOrder = append(o.typeOrder, t.ID)
	}
	cp := t
	o.types[t.ID] = &cp
}

// AddPredicate registers a predicate.
func (o *Ontology) AddPredicate(p Predicate) {
	if p.Cardinality <= 0 {
		if p.Functional {
			p.Cardinality = 1
		} else {
			p.Cardinality = 2
		}
	}
	if _, ok := o.predicates[p.ID]; !ok {
		o.predOrder = append(o.predOrder, p.ID)
	}
	cp := p
	o.predicates[p.ID] = &cp
}

// AddEntity registers an entity and indexes it under each of its types.
func (o *Ontology) AddEntity(e Entity) {
	if _, ok := o.entities[e.ID]; !ok {
		o.entOrder = append(o.entOrder, e.ID)
	}
	cp := e
	cp.Types = append([]TypeID(nil), e.Types...)
	o.entities[e.ID] = &cp
	for _, t := range cp.Types {
		o.byType[t] = append(o.byType[t], e.ID)
	}
}

// Type returns the schema for id, or nil if unknown.
func (o *Ontology) Type(id TypeID) *Type { return o.types[id] }

// Predicate returns the schema for id, or nil if unknown.
func (o *Ontology) Predicate(id PredicateID) *Predicate { return o.predicates[id] }

// Entity returns the entity for id, or nil if unknown.
func (o *Ontology) Entity(id EntityID) *Entity { return o.entities[id] }

// Types returns all type IDs in registration order.
func (o *Ontology) Types() []TypeID { return o.typeOrder }

// Predicates returns all predicate IDs in registration order.
func (o *Ontology) Predicates() []PredicateID { return o.predOrder }

// Entities returns all entity IDs in registration order.
func (o *Ontology) Entities() []EntityID { return o.entOrder }

// EntitiesOfType returns the IDs of entities carrying type t, in registration
// order.
func (o *Ontology) EntitiesOfType(t TypeID) []EntityID { return o.byType[t] }

// PredicatesOfType returns the predicates whose subject type is t, sorted by
// ID for determinism.
func (o *Ontology) PredicatesOfType(t TypeID) []*Predicate {
	var out []*Predicate
	for _, id := range o.predOrder {
		if p := o.predicates[id]; p.SubjectType == t {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NumTypes reports the number of registered types.
func (o *Ontology) NumTypes() int { return len(o.types) }

// NumPredicates reports the number of registered predicates.
func (o *Ontology) NumPredicates() int { return len(o.predicates) }

// NumEntities reports the number of registered entities.
func (o *Ontology) NumEntities() int { return len(o.entities) }
