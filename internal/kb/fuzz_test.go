package kb

import "testing"

// FuzzParseObject checks that ParseObject never panics and that accepted
// inputs round-trip through Object.String.
func FuzzParseObject(f *testing.F) {
	f.Add("e:/m/07r1h")
	f.Add("s:Syracuse NY")
	f.Add("n:1986")
	f.Add("n:-3.25e2")
	f.Add("")
	f.Add("x:unknown")
	f.Add("n:notanumber")
	f.Add("s:")
	f.Fuzz(func(t *testing.T, in string) {
		obj, err := ParseObject(in)
		if err != nil {
			return
		}
		re, err2 := ParseObject(obj.String())
		if err2 != nil {
			t.Fatalf("round trip of accepted input %q failed: %v", in, err2)
		}
		// Numbers may normalize (1986.0 vs 1986); everything else must be
		// exactly stable.
		if obj.Kind != KindNumber && re != obj {
			t.Fatalf("unstable round trip: %q -> %v -> %v", in, obj, re)
		}
		if obj.Kind == KindNumber && re.Num != obj.Num {
			t.Fatalf("number value drifted: %v -> %v", obj.Num, re.Num)
		}
	})
}

// FuzzParseTriple checks ParseTriple against arbitrary input and round-trips
// accepted triples through Encode.
func FuzzParseTriple(f *testing.F) {
	f.Add("/m/1\t/p/x\ts:value")
	f.Add("/m/1\t/p/x\te:/m/2")
	f.Add("/m/1\t/p/x\tn:42")
	f.Add("no tabs at all")
	f.Add("a\tb")
	f.Add("a\tb\tc\td")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ParseTriple(in)
		if err != nil {
			return
		}
		re, err2 := ParseTriple(tr.Encode())
		if err2 != nil {
			t.Fatalf("round trip of accepted input %q failed: %v", in, err2)
		}
		if re.Subject != tr.Subject || re.Predicate != tr.Predicate || re.Object.Kind != tr.Object.Kind {
			t.Fatalf("unstable round trip: %q -> %v -> %v", in, tr, re)
		}
	})
}
