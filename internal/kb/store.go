package kb

import "sort"

// Store is an in-memory triple store with the two indexes knowledge fusion
// needs constantly: by data item (all objects claimed for a (subject,
// predicate)) and by subject. It deduplicates triples on insert.
//
// Store is the substrate for both the ground-truth world (all true triples)
// and the Freebase snapshot (the incomplete trusted KB used for the LCWA
// gold standard).
type Store struct {
	byItem    map[DataItem][]Object
	bySubject map[EntityID][]PredicateID
	present   map[Triple]struct{}
	n         int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		byItem:    make(map[DataItem][]Object),
		bySubject: make(map[EntityID][]PredicateID),
		present:   make(map[Triple]struct{}),
	}
}

// Add inserts a triple; duplicates are ignored. It reports whether the triple
// was newly inserted.
func (s *Store) Add(t Triple) bool {
	if _, ok := s.present[t]; ok {
		return false
	}
	s.present[t] = struct{}{}
	item := t.Item()
	if len(s.byItem[item]) == 0 {
		s.bySubject[t.Subject] = append(s.bySubject[t.Subject], t.Predicate)
	}
	s.byItem[item] = append(s.byItem[item], t.Object)
	s.n++
	return true
}

// Has reports whether the exact triple is present.
func (s *Store) Has(t Triple) bool {
	_, ok := s.present[t]
	return ok
}

// HasItem reports whether any triple with the given data item is present.
func (s *Store) HasItem(d DataItem) bool { return len(s.byItem[d]) > 0 }

// Objects returns all objects stored for the data item, in insertion order.
// The returned slice is owned by the store.
func (s *Store) Objects(d DataItem) []Object { return s.byItem[d] }

// PredicatesOf returns the predicates for which the subject has at least one
// triple, in first-insertion order.
func (s *Store) PredicatesOf(subject EntityID) []PredicateID { return s.bySubject[subject] }

// Len reports the number of stored triples.
func (s *Store) Len() int { return s.n }

// NumItems reports the number of distinct data items.
func (s *Store) NumItems() int { return len(s.byItem) }

// Items returns all data items, sorted, for deterministic iteration.
func (s *Store) Items() []DataItem {
	out := make([]DataItem, 0, len(s.byItem))
	for d := range s.byItem {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Subject != out[j].Subject {
			return out[i].Subject < out[j].Subject
		}
		return out[i].Predicate < out[j].Predicate
	})
	return out
}

// Triples returns all stored triples sorted by (subject, predicate, object)
// for deterministic iteration.
func (s *Store) Triples() []Triple {
	out := make([]Triple, 0, s.n)
	for t := range s.present {
		out = append(out, t)
	}
	SortTriples(out)
	return out
}

// ForEachItem calls fn for every data item with its objects. Iteration order
// is deterministic (sorted by data item).
func (s *Store) ForEachItem(fn func(DataItem, []Object)) {
	for _, d := range s.Items() {
		fn(d, s.byItem[d])
	}
}

// SortTriples sorts triples by (subject, predicate, object kind, object
// value) for deterministic output.
func SortTriples(ts []Triple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		if a.Predicate != b.Predicate {
			return a.Predicate < b.Predicate
		}
		if a.Object.Kind != b.Object.Kind {
			return a.Object.Kind < b.Object.Kind
		}
		if a.Object.Str != b.Object.Str {
			return a.Object.Str < b.Object.Str
		}
		return a.Object.Num < b.Object.Num
	})
}
