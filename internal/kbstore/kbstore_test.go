package kbstore

import (
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"kfusion/internal/exper"
	"kfusion/internal/fusion"
	"kfusion/internal/kb"
)

func sample() []fusion.FusedTriple {
	return []fusion.FusedTriple{
		{Triple: kb.Triple{Subject: "/m/b", Predicate: "/p/x", Object: kb.StringObject("v1")},
			Probability: 0.93, Predicted: true, Provenances: 4, Extractors: 2},
		{Triple: kb.Triple{Subject: "/m/a", Predicate: "/p/y", Object: kb.NumberObject(1986)},
			Probability: 0.5, Predicted: true, Provenances: 1, Extractors: 1},
		{Triple: kb.Triple{Subject: "/m/a", Predicate: "/p/x", Object: kb.EntityObject("/m/c")},
			Probability: -1, Predicted: false, Provenances: 2, Extractors: 2},
		{Triple: kb.Triple{Subject: "/m/a", Predicate: "/p/x", Object: kb.StringObject("v2")},
			Probability: 0.07, Predicted: true, Provenances: 1, Extractors: 1},
	}
}

func roundTrip(t *testing.T, triples []fusion.FusedTriple) *KB {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.kb")
	if err := Write(path, triples); err != nil {
		t.Fatal(err)
	}
	k, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestRoundTrip(t *testing.T) {
	in := sample()
	k := roundTrip(t, in)
	if k.Len() != len(in) {
		t.Fatalf("Len = %d, want %d", k.Len(), len(in))
	}
	// Records are sorted by subject; lookups by subject must return all.
	aRecs := k.BySubject("/m/a")
	if len(aRecs) != 3 {
		t.Fatalf("BySubject(a) = %d records", len(aRecs))
	}
	bRecs := k.BySubject("/m/b")
	if len(bRecs) != 1 || bRecs[0].Triple.Object.Str != "v1" {
		t.Fatalf("BySubject(b) = %+v", bRecs)
	}
	if got := k.BySubject("/m/none"); got != nil {
		t.Errorf("absent subject returned %v", got)
	}
	// Probabilities survive within 16-bit precision.
	for _, f := range bRecs {
		if math.Abs(f.Probability-0.93) > 1e-4 {
			t.Errorf("probability %v, want ~0.93", f.Probability)
		}
	}
	// Unpredicted rows stay unpredicted.
	found := false
	for _, f := range aRecs {
		if !f.Predicted {
			found = true
			if f.Probability != -1 {
				t.Errorf("unpredicted probability = %v", f.Probability)
			}
		}
	}
	if !found {
		t.Error("unpredicted record lost")
	}
}

func TestByItemAndAbove(t *testing.T) {
	k := roundTrip(t, sample())
	item := kb.DataItem{Subject: "/m/a", Predicate: "/p/x"}
	if got := k.ByItem(item); len(got) != 2 {
		t.Errorf("ByItem = %d records, want 2", len(got))
	}
	var above []float64
	k.Above(0.4, func(f fusion.FusedTriple) bool {
		above = append(above, f.Probability)
		return true
	})
	if len(above) != 2 {
		t.Errorf("Above(0.4) = %d records, want 2", len(above))
	}
	// Early stop.
	count := 0
	k.Above(0, func(fusion.FusedTriple) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("Above early stop visited %d", count)
	}
}

func TestStats(t *testing.T) {
	k := roundTrip(t, sample())
	triples, subjects, predicted := k.Stats()
	if triples != 4 || subjects != 2 || predicted != 3 {
		t.Errorf("Stats = (%d,%d,%d), want (4,2,3)", triples, subjects, predicted)
	}
	if len(k.Predicates()) != 2 {
		t.Errorf("Predicates = %v", k.Predicates())
	}
}

func TestEmptyStore(t *testing.T) {
	k := roundTrip(t, nil)
	if k.Len() != 0 {
		t.Errorf("empty store Len = %d", k.Len())
	}
}

func TestOpenErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.kb")
	if err := os.WriteFile(bad, []byte("not a kb file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad); err == nil {
		t.Error("opened garbage file")
	}
	if _, err := Open(filepath.Join(dir, "missing.kb")); err == nil {
		t.Error("opened missing file")
	}
	// Truncated file.
	good := filepath.Join(dir, "good.kb")
	if err := Write(good, sample()); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(good)
	trunc := filepath.Join(dir, "trunc.kb")
	if err := os.WriteFile(trunc, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(trunc); err == nil {
		t.Error("opened truncated file")
	}
}

func TestProbPrecisionQuick(t *testing.T) {
	f := func(raw uint16) bool {
		p := float64(raw) / 65535
		got, ok := decodeProb(encodeProb(p))
		return ok && math.Abs(got-p) <= 1.0/65534+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if v, ok := decodeProb(encodeProb(-1)); ok || v != -1 {
		t.Error("unpredicted sentinel lost")
	}
	if v, _ := decodeProb(encodeProb(1)); math.Abs(v-1) > 1e-9 {
		t.Errorf("p=1 decodes to %v", v)
	}
	if v, _ := decodeProb(encodeProb(0)); math.Abs(v) > 1e-9 {
		t.Errorf("p=0 decodes to %v", v)
	}
}

func TestFullPipelineSnapshot(t *testing.T) {
	ds := exper.SharedDataset(exper.ScaleSmall, 100)
	res := ds.Fuse("popaccu", fusion.PopAccuConfig())
	path := filepath.Join(t.TempDir(), "fused.kb")
	if err := Write(path, res.Triples); err != nil {
		t.Fatal(err)
	}
	k, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if k.Len() != len(res.Triples) {
		t.Fatalf("snapshot lost records: %d vs %d", k.Len(), len(res.Triples))
	}
	// Every triple must round-trip (modulo probability quantization and
	// ItemProvenances, which the store does not persist).
	want := map[kb.Triple]fusion.FusedTriple{}
	for _, f := range res.Triples {
		want[f.Triple] = f
	}
	for _, f := range k.All() {
		w, ok := want[f.Triple]
		if !ok {
			t.Fatalf("unexpected triple %v", f.Triple)
		}
		if f.Predicted != w.Predicted || f.Provenances != w.Provenances || f.Extractors != w.Extractors {
			t.Fatalf("metadata mismatch for %v: %+v vs %+v", f.Triple, f, w)
		}
		if w.Predicted && math.Abs(f.Probability-w.Probability) > 1e-4 {
			t.Fatalf("probability drift for %v: %v vs %v", f.Triple, f.Probability, w.Probability)
		}
	}
	// File should be compact: well under the JSONL equivalent.
	info, _ := os.Stat(path)
	if info.Size() > int64(len(res.Triples))*120 {
		t.Errorf("store unexpectedly large: %d bytes for %d triples", info.Size(), len(res.Triples))
	}
}

// mustImage writes the sample store and returns its raw bytes.
func mustImage(t *testing.T) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "img.kb")
	if err := Write(path, sample()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestParseCorruptTable drives Parse through a table of structural
// corruptions, asserting each fails with the right typed error and none
// panics or mis-slices.
func TestParseCorruptTable(t *testing.T) {
	good := mustImage(t)
	if _, err := Parse(good); err != nil {
		t.Fatalf("pristine image rejected: %v", err)
	}

	mut := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), good...))
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrCorrupt},
		{"short", good[:headerLen+footerLen-1], ErrCorrupt},
		{"bad header magic", mut(func(b []byte) []byte { b[0] ^= 0xff; return b }), ErrCorrupt},
		{"bad version", mut(func(b []byte) []byte { b[4] = version + 1; return b }), ErrVersion},
		{"bad footer magic", mut(func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b }), ErrCorrupt},
		{"index offset past footer", mut(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[len(b)-footerLen:], uint64(len(b)))
			return b
		}), ErrCorrupt},
		{"index offset inside header", mut(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[len(b)-footerLen:], 1)
			return b
		}), ErrCorrupt},
		{"index offset mid-records", mut(func(b []byte) []byte {
			off := binary.LittleEndian.Uint64(b[len(b)-footerLen:])
			binary.LittleEndian.PutUint64(b[len(b)-footerLen:], off-1)
			return b
		}), ErrCorrupt},
		// A 10-byte maximal uvarint as the first subject length: the old
		// int-overflow comparison mis-sliced here instead of failing cleanly.
		{"huge string length", mut(func(b []byte) []byte {
			huge := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}
			out := append([]byte(nil), b[:headerLen]...)
			out = append(out, 1) // one predicate
			out = append(out, huge...)
			out = append(out, b[len(b)-footerLen:]...)
			binary.LittleEndian.PutUint64(out[len(out)-footerLen:], uint64(headerLen+1))
			return out
		}), ErrCorrupt},
		{"truncated mid-record", good[:len(good)*2/3], ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k, err := Parse(tc.data)
			if err == nil {
				t.Fatalf("accepted corrupt image (%d records)", k.Len())
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v, want %v", err, tc.want)
			}
		})
	}

	// Index-disagreement corruption: flip an index entry's offset byte. The
	// uvarint offsets live between indexOffset and the footer.
	off := binary.LittleEndian.Uint64(good[len(good)-footerLen:])
	for i := int(off); i < len(good)-footerLen; i++ {
		b := append([]byte(nil), good...)
		b[i] ^= 0x01
		if _, err := Parse(b); err == nil {
			t.Fatalf("accepted image with corrupt index byte %d", i)
		}
	}
}
