package kbstore

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"kfusion/internal/fusion"
	"kfusion/internal/kb"
)

func concurrencyTriples(n int) []fusion.FusedTriple {
	out := make([]fusion.FusedTriple, n)
	for i := range out {
		out[i] = fusion.FusedTriple{
			Triple: kb.Triple{
				Subject:   kb.EntityID(fmt.Sprintf("/m/%03d", i%40)),
				Predicate: kb.PredicateID(fmt.Sprintf("/p/%d", i%5)),
				Object:    kb.StringObject(fmt.Sprintf("v%d", i)),
			},
			Probability: float64(i%97) / 97,
			Predicted:   i%11 != 0,
			Provenances: i % 9,
			Extractors:  i % 4,
		}
	}
	return out
}

// TestConcurrentReaders pins the read-side concurrency contract: a KB opened
// once is immutable, so any number of goroutines may run lookups and scans
// simultaneously. Run under -race in CI, this is the pin that the read path
// stays free of hidden mutable state.
func TestConcurrentReaders(t *testing.T) {
	triples := concurrencyTriples(500)
	path := filepath.Join(t.TempDir(), "conc.kb")
	if err := Write(path, triples); err != nil {
		t.Fatal(err)
	}
	k, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				subj := kb.EntityID(fmt.Sprintf("/m/%03d", (w*7+i)%40))
				if len(k.BySubject(subj)) == 0 {
					t.Errorf("worker %d: subject %s missing", w, subj)
					return
				}
				k.ByItem(kb.DataItem{Subject: subj, Predicate: kb.PredicateID(fmt.Sprintf("/p/%d", i%5))})
				n := 0
				k.Above(0.5, func(fusion.FusedTriple) bool { n++; return n < 10 })
				if _, _, pred := k.Stats(); pred == 0 {
					t.Errorf("worker %d: no predicted triples", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestConcurrentWritersAndReaders exercises the full store lifecycle under
// concurrency: several goroutines write distinct snapshot files while others
// repeatedly open and scan already-written ones. Write is write-once per
// path (the snapshot model), so distinct paths are the supported concurrent
// shape; this pins that no package-level state is shared between writers.
func TestConcurrentWritersAndReaders(t *testing.T) {
	dir := t.TempDir()
	triples := concurrencyTriples(300)

	// Seed one snapshot for the readers to hammer while writers run.
	seedPath := filepath.Join(dir, "seed.kb")
	if err := Write(seedPath, triples); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			path := filepath.Join(dir, fmt.Sprintf("writer%d.kb", w))
			for i := 0; i < 5; i++ {
				if err := Write(path, triples); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				k, err := Open(path)
				if err != nil {
					t.Errorf("writer %d reopen: %v", w, err)
					return
				}
				if k.Len() != len(triples) {
					t.Errorf("writer %d: %d records, want %d", w, k.Len(), len(triples))
					return
				}
			}
		}(w)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				k, err := Open(seedPath)
				if err != nil {
					t.Errorf("reader %d: %v", w, err)
					return
				}
				if len(k.Predicates()) == 0 || k.Len() != len(triples) {
					t.Errorf("reader %d: bad snapshot", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
