// Package kbstore persists a fused knowledge base to a single compact file —
// the "central data repository" the paper's pipeline feeds. The format is a
// write-once, read-many snapshot:
//
//	[magic u32][version u8]
//	[predicate table: count uvarint, then len-prefixed strings]
//	[record count uvarint]
//	[records, sorted by (subject, predicate, object)]
//	[subject index: count uvarint, (len-prefixed subject, record offset uvarint)*]
//	[footer: index offset u64, magic u32]
//
// Records delta-share their subject with the previous record (a run-length
// byte), intern predicates through the table, and encode probabilities as
// 16-bit fixed point — ample for calibrated truthfulness scores. The subject
// index stores the first record offset of each distinct subject, enabling
// O(log n) subject lookups via binary search over the in-memory index.
package kbstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"kfusion/internal/fusion"
	"kfusion/internal/kb"
	"kfusion/internal/kfio"
)

const (
	magic   = 0x4b465553 // "KFUS"
	version = 1

	headerLen = 5  // u32 magic + u8 version
	footerLen = 12 // u64 index offset + u32 magic
)

var (
	// ErrCorrupt reports a store file whose bytes fail structural validation:
	// bad magic, truncation, out-of-range offsets or indices, or a record
	// region that does not line up with the subject index.
	ErrCorrupt = errors.New("kbstore: corrupt file")
	// ErrVersion reports a store written by an incompatible format version.
	ErrVersion = errors.New("kbstore: unsupported version")
)

// Write persists fused triples to path. Unpredicted triples (no probability)
// are kept with probability -1 so the store is a faithful snapshot.
func Write(path string, triples []fusion.FusedTriple) error {
	sorted := append([]fusion.FusedTriple(nil), triples...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i].Triple, sorted[j].Triple
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		if a.Predicate != b.Predicate {
			return a.Predicate < b.Predicate
		}
		return a.Object.String() < b.Object.String()
	})

	// Predicate interning.
	predIdx := map[kb.PredicateID]uint64{}
	var preds []kb.PredicateID
	for _, t := range sorted {
		if _, ok := predIdx[t.Triple.Predicate]; !ok {
			predIdx[t.Triple.Predicate] = uint64(len(preds))
			preds = append(preds, t.Triple.Predicate)
		}
	}

	// The snapshot replaces any previous store at path; write it atomically
	// so a crash mid-write leaves the old snapshot intact, never a torn file.
	return kfio.AtomicWriteFile(path, func(out io.Writer) error {
		w := &countingWriter{w: out}

		writeU32(w, magic)
		w.writeByte(version)
		w.writeUvarint(uint64(len(preds)))
		for _, p := range preds {
			w.writeString(string(p))
		}
		w.writeUvarint(uint64(len(sorted)))

		type subjEntry struct {
			subject string
			offset  uint64
		}
		var index []subjEntry
		prevSubject := ""
		for _, t := range sorted {
			subj := string(t.Triple.Subject)
			if subj != prevSubject {
				index = append(index, subjEntry{subject: subj, offset: w.n})
				w.writeByte(1) // new subject follows
				w.writeString(subj)
				prevSubject = subj
			} else {
				w.writeByte(0) // same subject as previous record
			}
			w.writeUvarint(predIdx[t.Triple.Predicate])
			w.writeString(t.Triple.Object.String())
			prob := t.Probability
			if !t.Predicted {
				prob = -1
			}
			w.writeU16(encodeProb(prob))
			w.writeUvarint(uint64(t.Provenances))
			w.writeUvarint(uint64(t.Extractors))
		}

		indexOffset := w.n
		w.writeUvarint(uint64(len(index)))
		for _, e := range index {
			w.writeString(e.subject)
			w.writeUvarint(e.offset)
		}
		var foot [12]byte
		binary.LittleEndian.PutUint64(foot[:8], indexOffset)
		binary.LittleEndian.PutUint32(foot[8:], magic)
		w.write(foot[:])

		if w.err != nil {
			return fmt.Errorf("kbstore: write: %w", w.err)
		}
		return nil
	})
}

// encodeProb maps [-1] ∪ [0,1] to 16 bits: 0 = unpredicted, 1..65535 map
// [0,1].
func encodeProb(p float64) uint16 {
	if p < 0 {
		return 0
	}
	v := uint16(math.Round(p*65534)) + 1
	return v
}

func decodeProb(v uint16) (float64, bool) {
	if v == 0 {
		return -1, false
	}
	return float64(v-1) / 65534, true
}

// KB is an opened store. The whole snapshot is held in memory (the format
// exists for compactness and interchange, not out-of-core access at this
// scale); lookups use the subject index.
type KB struct {
	records []fusion.FusedTriple
	// firstOf maps each subject to its first record position.
	firstOf map[kb.EntityID]int
	preds   []kb.PredicateID
}

// Open reads a store written by Write.
func Open(path string) (*KB, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("kbstore: open: %w", err)
	}
	return Parse(data)
}

// Parse decodes a store image held in memory, validating the footer, the
// index offset, every length and index, and that the subject index agrees
// with the record region. Failures wrap ErrCorrupt or ErrVersion.
func Parse(data []byte) (*KB, error) {
	if len(data) < headerLen+footerLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than header and footer", ErrCorrupt, len(data))
	}
	foot := data[len(data)-footerLen:]
	if binary.LittleEndian.Uint32(foot[8:]) != magic {
		return nil, fmt.Errorf("%w: bad footer magic", ErrCorrupt)
	}
	indexOffset := binary.LittleEndian.Uint64(foot[:8])
	if indexOffset < headerLen || indexOffset > uint64(len(data)-footerLen) {
		return nil, fmt.Errorf("%w: index offset %d outside file", ErrCorrupt, indexOffset)
	}

	r := &reader{data: data}
	if got := r.u32(); got != magic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, got)
	}
	if v := r.byte(); v != version {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrVersion, v, version)
	}
	nPreds := r.uvarint()
	kbh := &KB{firstOf: make(map[kb.EntityID]int)}
	for i := uint64(0); i < nPreds && r.err == nil; i++ {
		kbh.preds = append(kbh.preds, kb.PredicateID(r.str()))
	}
	n := r.uvarint()
	var subject kb.EntityID
	type subjEntry struct {
		subject string
		offset  uint64
	}
	var subjects []subjEntry
	for i := uint64(0); i < n && r.err == nil; i++ {
		recOff := uint64(r.pos)
		if r.byte() == 1 {
			subject = kb.EntityID(r.str())
			if _, dup := kbh.firstOf[subject]; dup {
				return nil, fmt.Errorf("%w: subject %q split across runs", ErrCorrupt, subject)
			}
			kbh.firstOf[subject] = len(kbh.records)
			subjects = append(subjects, subjEntry{subject: string(subject), offset: recOff})
		} else if i == 0 && r.err == nil {
			return nil, fmt.Errorf("%w: first record carries no subject", ErrCorrupt)
		}
		pi := r.uvarint()
		if r.err == nil && pi >= uint64(len(kbh.preds)) {
			return nil, fmt.Errorf("%w: predicate index %d out of range", ErrCorrupt, pi)
		}
		objStr := r.str()
		if r.err != nil {
			break
		}
		obj, perr := kb.ParseObject(objStr)
		if perr != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrCorrupt, i, perr)
		}
		prob, predicted := decodeProb(r.u16())
		provs := r.uvarint()
		exts := r.uvarint()
		kbh.records = append(kbh.records, fusion.FusedTriple{
			Triple:      kb.Triple{Subject: subject, Predicate: kbh.preds[pi], Object: obj},
			Probability: prob,
			Predicted:   predicted,
			Provenances: int(provs),
			Extractors:  int(exts),
		})
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, r.err)
	}
	if uint64(r.pos) != indexOffset {
		return nil, fmt.Errorf("%w: records end at %d, index offset says %d", ErrCorrupt, r.pos, indexOffset)
	}

	// The on-disk subject index must agree with the records just parsed.
	nIdx := r.uvarint()
	if r.err == nil && nIdx != uint64(len(subjects)) {
		return nil, fmt.Errorf("%w: index has %d subjects, records have %d", ErrCorrupt, nIdx, len(subjects))
	}
	for i := uint64(0); i < nIdx && r.err == nil; i++ {
		s := r.str()
		off := r.uvarint()
		if r.err != nil {
			break
		}
		if s != subjects[i].subject || off != subjects[i].offset {
			return nil, fmt.Errorf("%w: index entry %d (%q@%d) does not match records (%q@%d)",
				ErrCorrupt, i, s, off, subjects[i].subject, subjects[i].offset)
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, r.err)
	}
	if uint64(r.pos) != uint64(len(data)-footerLen) {
		return nil, fmt.Errorf("%w: %d trailing bytes between index and footer", ErrCorrupt, len(data)-footerLen-r.pos)
	}
	return kbh, nil
}

// Len reports the number of stored triples.
func (k *KB) Len() int { return len(k.records) }

// Predicates returns the interned predicate table.
func (k *KB) Predicates() []kb.PredicateID { return k.preds }

// BySubject returns all fused triples for a subject (nil if absent).
func (k *KB) BySubject(s kb.EntityID) []fusion.FusedTriple {
	start, ok := k.firstOf[s]
	if !ok {
		return nil
	}
	end := start
	for end < len(k.records) && k.records[end].Triple.Subject == s {
		end++
	}
	return k.records[start:end]
}

// ByItem returns the fused triples of one data item.
func (k *KB) ByItem(d kb.DataItem) []fusion.FusedTriple {
	var out []fusion.FusedTriple
	for _, f := range k.BySubject(d.Subject) {
		if f.Triple.Predicate == d.Predicate {
			out = append(out, f)
		}
	}
	return out
}

// Above streams all triples with probability >= minProb, in subject order.
func (k *KB) Above(minProb float64, fn func(fusion.FusedTriple) bool) {
	for _, f := range k.records {
		if f.Predicted && f.Probability >= minProb {
			if !fn(f) {
				return
			}
		}
	}
}

// All returns every stored triple in subject order. The slice is owned by
// the KB.
func (k *KB) All() []fusion.FusedTriple { return k.records }

// Stats summarizes the store.
func (k *KB) Stats() (triples, subjects, predicted int) {
	return len(k.records), len(k.firstOf), k.predictedCount()
}

func (k *KB) predictedCount() int {
	n := 0
	for _, f := range k.records {
		if f.Predicted {
			n++
		}
	}
	return n
}

// ---- low-level encoding helpers ----

type countingWriter struct {
	w   io.Writer
	n   uint64
	err error
}

func (c *countingWriter) write(b []byte) {
	if c.err != nil {
		return
	}
	n, err := c.w.Write(b)
	c.n += uint64(n)
	c.err = err
}

func (c *countingWriter) writeByte(b byte) { c.write([]byte{b}) }

func (c *countingWriter) writeUvarint(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	c.write(buf[:n])
}

func (c *countingWriter) writeString(s string) {
	c.writeUvarint(uint64(len(s)))
	c.write([]byte(s))
}

func (c *countingWriter) writeU16(v uint16) {
	var buf [2]byte
	binary.LittleEndian.PutUint16(buf[:], v)
	c.write(buf[:])
}

func writeU32(c *countingWriter, v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	c.write(buf[:])
}

type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) fail(msg string) {
	if r.err == nil {
		r.err = fmt.Errorf("%s at offset %d", msg, r.pos)
	}
}

func (r *reader) byte() byte {
	if r.err != nil || r.pos >= len(r.data) {
		r.fail("truncated byte")
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *reader) u16() uint16 {
	if r.err != nil || r.pos+2 > len(r.data) {
		r.fail("truncated u16")
		return 0
	}
	v := binary.LittleEndian.Uint16(r.data[r.pos:])
	r.pos += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.pos+4 > len(r.data) {
		r.fail("truncated u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		// n == 0 is a truncated varint, n < 0 a 64-bit overflow.
		r.fail("bad uvarint")
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) str() string {
	n := r.uvarint()
	// Compare in uint64: a huge length must not overflow int and mis-slice.
	if r.err != nil || n > uint64(len(r.data)-r.pos) {
		r.fail("truncated string")
		return ""
	}
	s := string(r.data[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}
