package genstore

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"kfusion/internal/extract"
	"kfusion/internal/faultfs"
	"kfusion/internal/fusion"
	"kfusion/internal/kb"
	"kfusion/internal/twolayer"
)

// testFeed synthesizes a deterministic extraction stream with repeated
// (prov, triple) pairs across batch boundaries and a growing extractor
// fleet, so appends rename nothing but do extend every ID space.
func testFeed(n int) []extract.Extraction {
	out := make([]extract.Extraction, n)
	for i := range out {
		out[i] = extract.Extraction{
			Triple: kb.Triple{
				Subject:   kb.EntityID(fmt.Sprintf("s%d", i%23)),
				Predicate: kb.PredicateID(fmt.Sprintf("p%d", i%3)),
				Object:    kb.StringObject(fmt.Sprintf("v%d", (i*7)%5)),
			},
			Extractor:  fmt.Sprintf("X%d", (i*13)%4),
			Pattern:    fmt.Sprintf("pat%d", i%3),
			URL:        fmt.Sprintf("http://site%d.example/p%d", i%9, i%17),
			Site:       fmt.Sprintf("site%d.example", i%9),
			Confidence: float64(i%10) / 10,
			Error:      extract.ErrorKind(i % 5),
		}
	}
	return out
}

// claimDriver is the claim-layer pipeline the store persists: claim-stream
// dedup, compile/append, warm fuse — the same shape kfuse -append runs.
type claimDriver struct {
	gran   fusion.Granularity
	cfg    fusion.Config
	stream *fusion.ClaimStream
}

func newClaimDriver() *claimDriver {
	return &claimDriver{gran: fusion.GranExtractorSitePred, cfg: fusion.PopAccuConfig()}
}

func (d *claimDriver) apply(st *State, batch []extract.Extraction) error {
	if d.stream == nil {
		if st.Claim != nil {
			d.stream = fusion.SeedClaimStream(d.gran, st.Claim)
		} else {
			d.stream = fusion.NewClaimStream(d.gran)
		}
	}
	claims := d.stream.Add(batch)
	if st.Claim == nil {
		st.Claim = fusion.MustCompile(claims)
	} else {
		st.Claim = st.Claim.MustAppend(claims)
	}
	res, err := st.Claim.FuseWarm(d.cfg, st.Result)
	if err != nil {
		return err
	}
	st.Method = "popaccu"
	st.Gran = d.gran
	st.Result = res
	return nil
}

// runPipeline drives a full append run over fsys: open (recovering whatever
// state survives), append the unconsumed feed suffix in chunks, snapshot
// every snapEvery batches and at the end. Any error is "the crash".
func runPipeline(fsys faultfs.FS, feed []extract.Extraction, chunk, snapEvery int) (*State, error) {
	d := newClaimDriver()
	store, st, err := OpenFS(fsys, d.apply)
	if err != nil {
		return nil, err
	}
	defer store.Close()
	for off := st.Consumed; off < len(feed); {
		end := min(off+chunk, len(feed))
		if err := store.Append(st, feed[off:end]); err != nil {
			return nil, err
		}
		off = end
		if snapEvery > 0 && st.Batches%snapEvery == 0 {
			if err := store.Snapshot(st); err != nil {
				return nil, err
			}
		}
	}
	if err := store.Snapshot(st); err != nil {
		return nil, err
	}
	return st, nil
}

// stateFingerprint reduces a state to comparable bytes: the canonical claim
// graph encoding plus the result encoding.
func stateFingerprint(t *testing.T, st *State) []byte {
	t.Helper()
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "consumed=%d batches=%d\n", st.Consumed, st.Batches)
	if st.Claim != nil {
		if err := st.Claim.EncodeSnapshot(&buf); err != nil {
			t.Fatalf("encode claim graph: %v", err)
		}
	}
	if st.Result != nil {
		if err := fusion.EncodeResult(&buf, st.Result); err != nil {
			t.Fatalf("encode result: %v", err)
		}
	}
	return buf.Bytes()
}

const (
	feedLen   = 120
	chunkLen  = 25
	snapEvery = 2
)

// uncrashedFingerprint runs the pipeline once with no faults and returns the
// reference final state.
func uncrashedFingerprint(t *testing.T) []byte {
	t.Helper()
	st, err := runPipeline(faultfs.NewMem(), testFeed(feedLen), chunkLen, snapEvery)
	if err != nil {
		t.Fatalf("uncrashed run failed: %v", err)
	}
	return stateFingerprint(t, st)
}

// crashPoints picks the step budgets the sweep injects: every boundary early
// on (metadata writes, journal header, first records) and a dense stride
// across the rest of the run.
func crashPoints(t *testing.T, total int64) []int64 {
	t.Helper()
	dense := int64(150)
	stride := int64(1)
	if total > 600 {
		stride = total / 300
	}
	if testing.Short() {
		dense = 40
		stride = total / 60
		if stride == 0 {
			stride = 1
		}
	}
	var pts []int64
	for b := int64(0); b < total && b < dense; b++ {
		pts = append(pts, b)
	}
	for b := dense; b < total; b += stride {
		pts = append(pts, b)
	}
	return pts
}

// TestCrashRecoveryEveryStep is the tentpole property test: crash the
// pipeline after b I/O steps for a sweep of b across the whole run, recover
// on the surviving bytes, finish the run, and require the final state to be
// bit-identical to the uncrashed run's — for clean crashes and torn renames.
func TestCrashRecoveryEveryStep(t *testing.T) {
	feed := testFeed(feedLen)
	want := uncrashedFingerprint(t)

	// Recorder pass counts the total step budget of a full run.
	rec := faultfs.NewFaulty(faultfs.NewMem(), -1)
	if _, err := runPipeline(rec, feed, chunkLen, snapEvery); err != nil {
		t.Fatalf("recorder run failed: %v", err)
	}
	total := rec.Spent()

	for _, torn := range []bool{false, true} {
		name := "clean"
		if torn {
			name = "torn-rename"
		}
		t.Run(name, func(t *testing.T) {
			for _, b := range crashPoints(t, total) {
				mem := faultfs.NewMem()
				ffs := faultfs.NewFaulty(mem, b)
				ffs.TornRename = torn
				if _, err := runPipeline(ffs, feed, chunkLen, snapEvery); err == nil {
					t.Fatalf("budget %d: run did not crash", b)
				}

				// The Mem map is the disk at the moment of death; recover on
				// it with no faults and finish the run.
				st, err := runPipeline(mem, feed, chunkLen, snapEvery)
				if err != nil {
					t.Fatalf("budget %d: recovery run failed: %v", b, err)
				}
				if got := stateFingerprint(t, st); !bytes.Equal(got, want) {
					t.Fatalf("budget %d: recovered state differs from uncrashed run", b)
				}
			}
		})
	}
}

// TestCleanReopenWarmBoots checks the warm-boot path: a completed run
// reopens with zero degradations and the exact final state, without
// reapplying any batch.
func TestCleanReopenWarmBoots(t *testing.T) {
	mem := faultfs.NewMem()
	feed := testFeed(feedLen)
	st, err := runPipeline(mem, feed, chunkLen, snapEvery)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	want := stateFingerprint(t, st)

	applied := 0
	store, st2, err := OpenFS(mem, func(st *State, batch []extract.Extraction) error {
		applied++
		return nil
	})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer store.Close()
	if applied != 0 {
		t.Fatalf("clean reopen replayed %d batches", applied)
	}
	if d := store.Degradations(); len(d) != 0 {
		t.Fatalf("clean reopen degraded: %v", d)
	}
	if got := stateFingerprint(t, st2); !bytes.Equal(got, want) {
		t.Fatal("reopened state differs from final in-memory state")
	}
}

// corruptNewestSnapshot flips one byte in the body of the newest snapshot.
func corruptNewestSnapshot(t *testing.T, mem *faultfs.Mem) string {
	t.Helper()
	names, err := mem.List()
	if err != nil {
		t.Fatal(err)
	}
	snaps := snapNames(names)
	if len(snaps) == 0 {
		t.Fatal("no snapshots on disk")
	}
	sz, err := mem.Size(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.FlipBit(snaps[0], sz/2, 3); err != nil {
		t.Fatal(err)
	}
	return snaps[0]
}

// TestBitFlipFallsBackToPreviousSnapshot checks degradation rung one: a
// checksum-failing newest snapshot falls back to the previous snapshot plus
// journal replay, reproducing the exact state, with the degradation
// reported.
func TestBitFlipFallsBackToPreviousSnapshot(t *testing.T) {
	mem := faultfs.NewMem()
	feed := testFeed(feedLen)
	st, err := runPipeline(mem, feed, chunkLen, snapEvery)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	want := stateFingerprint(t, st)
	corruptNewestSnapshot(t, mem)

	d := newClaimDriver()
	store, st2, err := OpenFS(mem, d.apply)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer store.Close()
	if len(store.Degradations()) == 0 {
		t.Fatal("corrupt snapshot not reported")
	}
	if got := stateFingerprint(t, st2); !bytes.Equal(got, want) {
		t.Fatal("fallback recovery differs from uncrashed state")
	}
}

// TestAllSnapshotsLostRecompilesFromFeed checks the last degradation rung:
// with every snapshot corrupt, Open reports the fallback and returns an
// empty-cursor state; re-running the pipeline from the feed reproduces the
// uncrashed final state.
func TestAllSnapshotsLostRecompilesFromFeed(t *testing.T) {
	mem := faultfs.NewMem()
	feed := testFeed(feedLen)
	st, err := runPipeline(mem, feed, chunkLen, snapEvery)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	want := stateFingerprint(t, st)

	names, _ := mem.List()
	for _, n := range snapNames(names) {
		sz, _ := mem.Size(n)
		if err := mem.FlipBit(n, sz/3, 1); err != nil {
			t.Fatal(err)
		}
	}

	d := newClaimDriver()
	store, st2, err := OpenFS(mem, d.apply)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	degr := store.Degradations()
	store.Close()
	if len(degr) == 0 {
		t.Fatal("lost snapshots not reported")
	}
	if st2.Claim != nil {
		t.Fatal("corrupt snapshots still hydrated a graph")
	}

	// The journal alone cannot bridge the rotation floor; the driver
	// re-reads the feed from Consumed (== 0 here) and must converge.
	st3, err := runPipeline(mem, feed, chunkLen, snapEvery)
	if err != nil {
		t.Fatalf("recompile run: %v", err)
	}
	if got := stateFingerprint(t, st3); !bytes.Equal(got, want) {
		t.Fatal("recompiled state differs from uncrashed state")
	}
}

// TestTruncatedSnapshotAndJournal checks byte-level truncation of both files
// never panics and always recovers to the uncrashed state via feed re-read.
func TestTruncatedSnapshotAndJournal(t *testing.T) {
	base := faultfs.NewMem()
	feed := testFeed(feedLen)
	st, err := runPipeline(base, feed, chunkLen, snapEvery)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	want := stateFingerprint(t, st)

	names, _ := base.List()
	for _, name := range names {
		sz, _ := base.Size(name)
		for _, cut := range []int{0, 1, sz / 3, sz / 2, sz - 1} {
			if cut < 0 || cut >= sz {
				continue
			}
			mem := base.Clone()
			if err := mem.Truncate(name, cut); err != nil {
				t.Fatal(err)
			}
			st2, err := runPipeline(mem, feed, chunkLen, snapEvery)
			if err != nil {
				t.Fatalf("truncate %s to %d: run failed: %v", name, cut, err)
			}
			if got := stateFingerprint(t, st2); !bytes.Equal(got, want) {
				t.Fatalf("truncate %s to %d: state differs", name, cut)
			}
		}
	}
}

// twoLayerDriver exercises the extraction-graph + twolayer warm-start path
// through the same store.
type twoLayerDriver struct {
	cfg twolayer.Config
}

func (d *twoLayerDriver) apply(st *State, batch []extract.Extraction) error {
	if st.Ext == nil {
		st.Ext = extract.Compile(batch, d.cfg.SiteLevel)
	} else {
		st.Ext = st.Ext.Append(batch)
	}
	res, tl, err := twolayer.FuseCompiledWarm(st.Ext, d.cfg, st.TL)
	if err != nil {
		return err
	}
	st.Method = "twolayer"
	st.SiteLevel = d.cfg.SiteLevel
	st.Result = res
	st.TL = tl
	return nil
}

// TestTwoLayerStateRoundTrips checks the store carries the extraction graph
// and twolayer warm-start state across a reopen bit-identically.
func TestTwoLayerStateRoundTrips(t *testing.T) {
	mem := faultfs.NewMem()
	feed := testFeed(feedLen)
	d := &twoLayerDriver{cfg: twolayer.DefaultConfig()}

	store, st, err := OpenFS(mem, d.apply)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(feed); off += chunkLen {
		if err := store.Append(st, feed[off:min(off+chunkLen, len(feed))]); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := store.Snapshot(st); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	store.Close()

	store2, st2, err := OpenFS(mem, (&twoLayerDriver{cfg: twolayer.DefaultConfig()}).apply)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer store2.Close()
	if d := store2.Degradations(); len(d) != 0 {
		t.Fatalf("degradations: %v", d)
	}
	var a, b bytes.Buffer
	if err := st.Ext.EncodeSnapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := st2.Ext.EncodeSnapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("extraction graph differs after reopen")
	}
	if !reflect.DeepEqual(st2.TL, st.TL) {
		t.Fatal("twolayer state differs after reopen")
	}
	if !reflect.DeepEqual(st2.Result, st.Result) {
		t.Fatal("result differs after reopen")
	}
	if st2.Method != "twolayer" || st2.SiteLevel != st.SiteLevel {
		t.Fatal("meta differs after reopen")
	}

	// Continue both one batch and confirm they stay in lockstep.
	extra := testFeed(feedLen + 30)[feedLen:]
	if err := d.apply(st, extra); err != nil {
		t.Fatal(err)
	}
	if err := store2.Append(st2, extra); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st2.Result, st.Result) {
		t.Fatal("results diverge after continued append")
	}
}

// TestJournalRecordRoundTrip checks the journal record codec is lossless,
// including the simulator's error attribution.
func TestJournalRecordRoundTrip(t *testing.T) {
	batch := testFeed(37)
	enc := encodeRecord(9, batch)
	recs, validLen, note := parseJournal(append(journalHeader(), enc...))
	if note != "" || validLen != journalHeaderLen+len(enc) {
		t.Fatalf("parse: note=%q validLen=%d", note, validLen)
	}
	if len(recs) != 1 || recs[0].seq != 9 {
		t.Fatalf("got %d records, seq %d", len(recs), recs[0].seq)
	}
	if !reflect.DeepEqual(recs[0].batch, batch) {
		t.Fatal("batch did not round-trip")
	}
}
