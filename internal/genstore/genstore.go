// Package genstore is the durability layer under the incremental fusion
// pipeline: a checksummed store for compiled graph generations plus a
// write-ahead append journal, with crash recovery. It is what lets a
// restarted kfuse -append (and the kfserved daemon) warm-boot its
// graph chain instead of recompiling the whole feed.
//
// # Contract
//
//   - Snapshot writes the full in-memory State — compiled claim/extraction
//     graph, warm-start accuracies, feed cursor — to a versioned file in
//     kbstore's magic/version/footer layout, every section CRC32C-checked,
//     via an atomic temp-file + fsync + rename protocol. The two newest
//     snapshots are retained.
//   - Append journals the raw extraction batch (length-prefixed, CRC32C)
//     and fsyncs BEFORE applying it to the in-memory state, so a crash
//     mid-apply loses nothing: the batch replays on reopen.
//   - Open loads the newest valid snapshot and replays journaled batches
//     through the caller's apply function. By the append contract of the
//     compiled graphs (Append == recompile of the concatenated stream), the
//     recovered state is bit-identical to the uncrashed run's.
//   - Degradation is graceful and reported, never a panic: a corrupt or
//     version-skewed snapshot falls back to the previous snapshot (the
//     journal retains every batch since it), then to an empty state — full
//     recompile as the caller re-reads the feed from State.Consumed == 0.
package genstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"

	"kfusion/internal/extract"
	"kfusion/internal/faultfs"
	"kfusion/internal/fusion"
	"kfusion/internal/kb"
	"kfusion/internal/twolayer"
	"kfusion/internal/wire"
)

const (
	snapMagic    = 0x4b464753 // "KFGS"
	journalMagic = 0x4b46474a // "KFGJ"
	version      = 1

	// Section IDs of the snapshot body.
	secMeta   = 1
	secClaim  = 2
	secResult = 3
	secExt    = 4
	secTL     = 5

	journalName = "journal.kfj"
	tmpSuffix   = ".tmp"
	snapPrefix  = "snap-"
	snapSuffix  = ".kfg"

	// snapshotsKept bounds the snapshot files on disk. Two generations give
	// the degradation path a fallback whose journal suffix is still retained.
	snapshotsKept = 2
)

var (
	// ErrCorrupt reports a snapshot or journal whose bytes fail structural or
	// checksum validation.
	ErrCorrupt = errors.New("genstore: corrupt file")
	// ErrVersion reports a file written by an incompatible format version.
	ErrVersion = errors.New("genstore: unsupported version")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// State is everything a resumed pipeline needs: the method binding, the
// compiled generations, the warm-start payloads and the feed cursor. Fields
// not used by a method stay nil (e.g. Ext/TL for the claim-layer methods).
type State struct {
	// Method is the fusion method the state was built by; a store opened for
	// a different method must not hydrate from it.
	Method string
	// Gran is the claim-layer provenance granularity (claim methods).
	Gran fusion.Granularity
	// SiteLevel is the extraction-graph source level (twolayer).
	SiteLevel bool

	Claim  *fusion.Compiled
	Result *fusion.Result
	Ext    *extract.Compiled
	TL     *twolayer.State

	// Consumed counts feed records already folded into the state; a resumed
	// driver skips exactly this many and continues batching.
	Consumed int
	// Batches counts applied batches; it is the journal sequence number of
	// the next Append.
	Batches int
}

// ApplyFunc folds one extraction batch into the state — the same closure the
// live pipeline uses, so journal replay is bit-identical to the original
// appends.
type ApplyFunc func(st *State, batch []extract.Extraction) error

// Store is an open generation store. Not safe for concurrent use: the
// pipeline it backs is a single appender.
type Store struct {
	fs      faultfs.FS
	apply   ApplyFunc
	journal faultfs.File
	degrade []string
}

// Open opens (or creates) a store in dir on the real filesystem.
func Open(dir string, apply ApplyFunc) (*Store, *State, error) {
	fsys, err := faultfs.NewOS(dir)
	if err != nil {
		return nil, nil, err
	}
	return OpenFS(fsys, apply)
}

// OpenFS opens a store over an arbitrary filesystem (fault injection enters
// here). It returns the recovered state: newest valid snapshot plus journal
// replay, degrading as documented above. The returned error is reserved for
// I/O failures of the filesystem itself; corruption never fails the open.
func OpenFS(fsys faultfs.FS, apply ApplyFunc) (*Store, *State, error) {
	s := &Store{fs: fsys, apply: apply}
	names, err := fsys.List()
	if err != nil {
		return nil, nil, fmt.Errorf("genstore: list: %w", err)
	}

	// Leftover temp files are debris of a crashed atomic write.
	for _, n := range names {
		if strings.HasSuffix(n, tmpSuffix) {
			_ = fsys.Remove(n)
		}
	}

	// Newest valid snapshot wins; every invalid one is a recorded fallback.
	st := &State{}
	snaps := snapNames(names) // descending
	loaded := false
	for _, n := range snaps {
		data, err := fsys.ReadFile(n)
		if err != nil {
			s.note("snapshot %s unreadable (%v)", n, err)
			continue
		}
		dec, derr := decodeSnapshot(data)
		if derr != nil {
			s.note("snapshot %s rejected (%v)", n, derr)
			if errors.Is(derr, ErrCorrupt) {
				// Remove it so the retention window never counts a corpse as
				// a fallback. Version-skewed files stay: another binary may
				// still read them.
				_ = fsys.Remove(n)
			}
			continue
		}
		st = dec
		loaded = true
		break
	}
	if !loaded && len(snaps) > 0 {
		// Final degradation rung: empty state, full recompile as the journal
		// replays and the caller re-reads the feed from Consumed == 0.
		s.note("no usable snapshot; recovering from journal and feed")
	}

	if err := s.recoverJournal(st); err != nil {
		return nil, nil, err
	}
	if err := s.pruneSnapshots(); err != nil {
		return nil, nil, err
	}

	// (Re)open the journal for appending, stamping a header if new.
	if err := s.openJournal(); err != nil {
		return nil, nil, err
	}
	return s, st, nil
}

// Degradations lists the fallbacks recovery took, in order; empty for a
// clean open.
func (s *Store) Degradations() []string { return append([]string(nil), s.degrade...) }

func (s *Store) note(format string, args ...any) {
	s.degrade = append(s.degrade, fmt.Sprintf(format, args...))
}

// Append journals the batch, fsyncs, then applies it to st. The journal
// write happening first is the crash guarantee: once Append returns, the
// batch is durable; if the process dies anywhere inside, reopen either
// replays the batch (journal record complete) or never saw it (torn record)
// — both bit-identical to some prefix of the uncrashed run.
func (s *Store) Append(st *State, batch []extract.Extraction) error {
	rec := encodeRecord(st.Batches, batch)
	if _, err := s.journal.Write(rec); err != nil {
		return fmt.Errorf("genstore: journal append: %w", err)
	}
	if err := s.journal.Sync(); err != nil {
		return fmt.Errorf("genstore: journal sync: %w", err)
	}
	if err := s.apply(st, batch); err != nil {
		return fmt.Errorf("genstore: apply batch %d: %w", st.Batches, err)
	}
	st.Batches++
	st.Consumed += len(batch)
	return nil
}

// Snapshot atomically persists st and rotates the journal: records already
// covered by the previous retained snapshot are dropped, so the journal
// stays bounded while the fallback snapshot keeps a complete replay suffix.
func (s *Store) Snapshot(st *State) error {
	name := snapName(st.Batches)
	tmp := name + tmpSuffix
	f, err := s.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("genstore: snapshot create: %w", err)
	}
	if _, err := f.Write(encodeSnapshot(st)); err != nil {
		f.Close()
		return fmt.Errorf("genstore: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("genstore: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("genstore: snapshot close: %w", err)
	}
	if err := s.fs.Rename(tmp, name); err != nil {
		return fmt.Errorf("genstore: snapshot rename: %w", err)
	}
	if err := s.fs.SyncDir(); err != nil {
		return fmt.Errorf("genstore: snapshot dir sync: %w", err)
	}

	if err := s.pruneSnapshots(); err != nil {
		return err
	}
	return s.rotateJournal()
}

// Close releases the journal handle.
func (s *Store) Close() error {
	if s.journal == nil {
		return nil
	}
	err := s.journal.Close()
	s.journal = nil
	return err
}

// ---- snapshot file layout ----
//
//	[u32 magic "KFGS"][u8 version]
//	[sections, concatenated]
//	[index: u32 count, then per section u32 id, u64 off, u64 len, u32 crc32c]
//	[footer: u64 index offset, u32 magic]

type section struct {
	id  uint32
	off uint64
	len uint64
	crc uint32
}

func encodeSnapshot(st *State) []byte {
	var body bytes.Buffer
	head := wire.NewWriter(&body)
	head.U32(snapMagic)
	head.U8(version)

	var secs []section
	add := func(id uint32, payload []byte) {
		secs = append(secs, section{
			id:  id,
			off: uint64(body.Len()),
			len: uint64(len(payload)),
			crc: crc32.Checksum(payload, castagnoli),
		})
		body.Write(payload)
	}

	var meta bytes.Buffer
	mw := wire.NewWriter(&meta)
	mw.String(st.Method)
	mw.Bools([]bool{st.Gran.SiteLevel, st.Gran.PerPredicate, st.Gran.PerPattern, st.Gran.ExtractorOnly, st.Gran.SourceOnly})
	mw.Bool(st.SiteLevel)
	mw.Int(st.Consumed)
	mw.Int(st.Batches)
	mw.Bool(st.Claim != nil)
	mw.Bool(st.Result != nil)
	mw.Bool(st.Ext != nil)
	mw.Bool(st.TL != nil)
	add(secMeta, meta.Bytes())

	if st.Claim != nil {
		var b bytes.Buffer
		if err := st.Claim.EncodeSnapshot(&b); err != nil {
			panic(fmt.Sprintf("genstore: claim graph encode: %v", err)) // bytes.Buffer cannot fail
		}
		add(secClaim, b.Bytes())
	}
	if st.Result != nil {
		var b bytes.Buffer
		if err := fusion.EncodeResult(&b, st.Result); err != nil {
			panic(fmt.Sprintf("genstore: result encode: %v", err))
		}
		add(secResult, b.Bytes())
	}
	if st.Ext != nil {
		var b bytes.Buffer
		if err := st.Ext.EncodeSnapshot(&b); err != nil {
			panic(fmt.Sprintf("genstore: extraction graph encode: %v", err))
		}
		add(secExt, b.Bytes())
	}
	if st.TL != nil {
		var b bytes.Buffer
		if err := twolayer.EncodeState(&b, st.TL); err != nil {
			panic(fmt.Sprintf("genstore: twolayer state encode: %v", err))
		}
		add(secTL, b.Bytes())
	}

	indexOff := uint64(body.Len())
	iw := wire.NewWriter(&body)
	iw.U32(uint32(len(secs)))
	for _, sec := range secs {
		iw.U32(sec.id)
		iw.U64(sec.off)
		iw.U64(sec.len)
		iw.U32(sec.crc)
	}
	iw.U64(indexOff)
	iw.U32(snapMagic)
	return body.Bytes()
}

func decodeSnapshot(data []byte) (*State, error) {
	const headerLen = 5
	const footerLen = 12
	if len(data) < headerLen+footerLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrCorrupt, len(data))
	}
	if binary.LittleEndian.Uint32(data) != snapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := data[4]; v != version {
		return nil, fmt.Errorf("%w: snapshot version %d, want %d", ErrVersion, v, version)
	}
	foot := data[len(data)-footerLen:]
	if binary.LittleEndian.Uint32(foot[8:]) != snapMagic {
		return nil, fmt.Errorf("%w: bad footer magic", ErrCorrupt)
	}
	indexOff := binary.LittleEndian.Uint64(foot[:8])
	if indexOff < headerLen || indexOff > uint64(len(data)-footerLen) {
		return nil, fmt.Errorf("%w: index offset %d outside file", ErrCorrupt, indexOff)
	}

	ir := wire.NewReader(data[indexOff : len(data)-footerLen])
	count := ir.U32()
	if ir.Err() != nil || uint64(count)*24 != uint64(ir.Remaining()) {
		return nil, fmt.Errorf("%w: malformed section index", ErrCorrupt)
	}
	var payload [6][]byte // indexed by section ID
	for i := uint32(0); i < count; i++ {
		id := ir.U32()
		off := ir.U64()
		n := ir.U64()
		crc := ir.U32()
		if ir.Err() != nil {
			return nil, fmt.Errorf("%w: malformed section index", ErrCorrupt)
		}
		if off < headerLen || off+n < off || off+n > indexOff {
			return nil, fmt.Errorf("%w: section %d span outside body", ErrCorrupt, id)
		}
		b := data[off : off+n]
		if crc32.Checksum(b, castagnoli) != crc {
			return nil, fmt.Errorf("%w: section %d checksum mismatch", ErrCorrupt, id)
		}
		if id < 1 || id >= uint32(len(payload)) {
			continue // unknown section: ignorable forward-compat payload
		}
		payload[id] = b
	}
	if payload[secMeta] == nil {
		return nil, fmt.Errorf("%w: missing meta section", ErrCorrupt)
	}

	st := &State{}
	mr := wire.NewReader(payload[secMeta])
	st.Method = mr.String()
	gran := mr.Bools()
	st.SiteLevel = mr.Bool()
	st.Consumed = mr.Int()
	st.Batches = mr.Int()
	hasClaim := mr.Bool()
	hasResult := mr.Bool()
	hasExt := mr.Bool()
	hasTL := mr.Bool()
	if mr.Err() != nil || len(gran) != 5 {
		return nil, fmt.Errorf("%w: malformed meta section", ErrCorrupt)
	}
	st.Gran = fusion.Granularity{
		SiteLevel:     gran[0],
		PerPredicate:  gran[1],
		PerPattern:    gran[2],
		ExtractorOnly: gran[3],
		SourceOnly:    gran[4],
	}

	if hasClaim {
		c, err := fusion.DecodeSnapshot(payload[secClaim])
		if err != nil {
			return nil, fmt.Errorf("%w: claim graph: %v", ErrCorrupt, err)
		}
		st.Claim = c
	}
	if hasResult {
		res, err := fusion.DecodeResult(payload[secResult])
		if err != nil {
			return nil, fmt.Errorf("%w: result: %v", ErrCorrupt, err)
		}
		st.Result = res
	}
	if hasExt {
		g, err := extract.DecodeSnapshot(payload[secExt])
		if err != nil {
			return nil, fmt.Errorf("%w: extraction graph: %v", ErrCorrupt, err)
		}
		st.Ext = g
	}
	if hasTL {
		tl, err := twolayer.DecodeState(payload[secTL])
		if err != nil {
			return nil, fmt.Errorf("%w: twolayer state: %v", ErrCorrupt, err)
		}
		st.TL = tl
	}
	return st, nil
}

// ---- journal ----
//
//	[u32 magic "KFGJ"][u8 version]
//	records: [u32 payload len][u32 crc32c][payload]
//	payload: uvarint seq, uvarint count, then per extraction the full field
//	set including the simulator's error attribution, so a replayed batch is
//	indistinguishable from the original.

const journalHeaderLen = 5

type record struct {
	seq   int
	batch []extract.Extraction
}

func journalHeader() []byte {
	var b [journalHeaderLen]byte
	binary.LittleEndian.PutUint32(b[:4], journalMagic)
	b[4] = version
	return b[:]
}

func encodeRecord(seq int, batch []extract.Extraction) []byte {
	var payload bytes.Buffer
	w := wire.NewWriter(&payload)
	w.Int(seq)
	w.Int(len(batch))
	for i := range batch {
		x := &batch[i]
		w.String(string(x.Triple.Subject))
		w.String(string(x.Triple.Predicate))
		w.String(x.Triple.Object.String())
		w.String(x.Extractor)
		w.String(x.Pattern)
		w.String(x.URL)
		w.String(x.Site)
		w.F64(x.Confidence)
		w.U8(uint8(x.Error))
	}
	p := payload.Bytes()
	out := make([]byte, 8+len(p))
	binary.LittleEndian.PutUint32(out[:4], uint32(len(p)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.Checksum(p, castagnoli))
	copy(out[8:], p)
	return out
}

func decodeRecord(payload []byte) (record, error) {
	r := wire.NewReader(payload)
	rec := record{seq: r.Int()}
	n := r.Int()
	if r.Err() != nil {
		return rec, r.Err()
	}
	if n > r.Remaining() {
		return rec, fmt.Errorf("%w: batch count %d exceeds record", ErrCorrupt, n)
	}
	rec.batch = make([]extract.Extraction, 0, n)
	for i := 0; i < n; i++ {
		subj := r.String()
		pred := r.String()
		objStr := r.String()
		if r.Err() != nil {
			return rec, r.Err()
		}
		obj, err := kb.ParseObject(objStr)
		if err != nil {
			return rec, err
		}
		rec.batch = append(rec.batch, extract.Extraction{
			Triple:     kb.Triple{Subject: kb.EntityID(subj), Predicate: kb.PredicateID(pred), Object: obj},
			Extractor:  r.String(),
			Pattern:    r.String(),
			URL:        r.String(),
			Site:       r.String(),
			Confidence: r.F64(),
			Error:      extract.ErrorKind(r.U8()),
		})
	}
	if r.Err() != nil {
		return rec, r.Err()
	}
	if r.Remaining() != 0 {
		return rec, fmt.Errorf("%w: %d trailing bytes in record", ErrCorrupt, r.Remaining())
	}
	return rec, nil
}

// parseJournal splits the journal into valid records plus the length of the
// valid prefix. A short or checksum-failing tail is expected after a crash;
// note reports why parsing stopped when bytes were dropped.
func parseJournal(data []byte) (recs []record, validLen int, note string) {
	if len(data) < journalHeaderLen {
		if len(data) > 0 {
			return nil, 0, "torn journal header"
		}
		return nil, 0, ""
	}
	if binary.LittleEndian.Uint32(data) != journalMagic || data[4] != version {
		return nil, 0, "bad journal header"
	}
	pos := journalHeaderLen
	for pos < len(data) {
		if len(data)-pos < 8 {
			return recs, pos, "torn record framing"
		}
		n := int(binary.LittleEndian.Uint32(data[pos:]))
		crc := binary.LittleEndian.Uint32(data[pos+4:])
		if n > len(data)-pos-8 {
			return recs, pos, "torn record payload"
		}
		payload := data[pos+8 : pos+8+n]
		if crc32.Checksum(payload, castagnoli) != crc {
			return recs, pos, "record checksum mismatch"
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return recs, pos, fmt.Sprintf("record decode: %v", err)
		}
		recs = append(recs, rec)
		pos += 8 + n
	}
	return recs, pos, ""
}

// recoverJournal replays journaled batches onto st and repairs the journal
// file if a torn or corrupt tail had to be dropped.
func (s *Store) recoverJournal(st *State) error {
	data, err := s.fs.ReadFile(journalName)
	if err != nil {
		return nil // no journal yet
	}
	recs, validLen, note := parseJournal(data)
	if note != "" && validLen < len(data) {
		s.note("journal: %s at offset %d; later records dropped", note, validLen)
	}

	kept := len(recs)
	for i, rec := range recs {
		if rec.seq < st.Batches {
			continue // already inside the snapshot
		}
		if rec.seq > st.Batches {
			// Unreachable records (e.g. every snapshot was lost and the
			// journal only retains a later suffix). The caller re-reads the
			// feed from Consumed; the orphans are dropped below so future
			// appends restart a contiguous sequence.
			s.note("journal gap: have batch %d, next record is %d; stopping replay", st.Batches, rec.seq)
			kept = i
			break
		}
		if err := s.apply(st, rec.batch); err != nil {
			return fmt.Errorf("genstore: replay batch %d: %w", rec.seq, err)
		}
		st.Batches++
		st.Consumed += len(rec.batch)
	}

	// Rewrite the journal when a torn/corrupt tail or a post-gap orphan run
	// was dropped, so later appends never land after garbage.
	if validLen < len(data) || kept < len(recs) {
		if err := s.rewriteJournal(recs[:kept]); err != nil {
			return err
		}
	}
	return nil
}

// rotateJournal rewrites the journal keeping only records the oldest
// retained snapshot still needs for replay.
func (s *Store) rotateJournal() error {
	floor := 0
	names, err := s.fs.List()
	if err != nil {
		return fmt.Errorf("genstore: list: %w", err)
	}
	if snaps := snapNames(names); len(snaps) > 0 {
		floor = snapSeq(snaps[len(snaps)-1]) // oldest retained snapshot
	}
	data, err := s.fs.ReadFile(journalName)
	if err != nil {
		return nil
	}
	recs, _, _ := parseJournal(data)
	kept := recs[:0]
	for _, rec := range recs {
		if rec.seq >= floor {
			kept = append(kept, rec)
		}
	}
	if len(kept) == len(recs) {
		return nil // nothing to drop
	}
	return s.rewriteJournal(kept)
}

// rewriteJournal atomically replaces the journal with the given records and
// reopens the append handle on the new file.
func (s *Store) rewriteJournal(recs []record) error {
	if s.journal != nil {
		_ = s.journal.Close()
		s.journal = nil
	}
	tmp := journalName + tmpSuffix
	f, err := s.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("genstore: journal rewrite: %w", err)
	}
	if _, err := f.Write(journalHeader()); err != nil {
		f.Close()
		return fmt.Errorf("genstore: journal rewrite: %w", err)
	}
	for _, rec := range recs {
		if _, err := f.Write(encodeRecord(rec.seq, rec.batch)); err != nil {
			f.Close()
			return fmt.Errorf("genstore: journal rewrite: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("genstore: journal rewrite sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("genstore: journal rewrite close: %w", err)
	}
	if err := s.fs.Rename(tmp, journalName); err != nil {
		return fmt.Errorf("genstore: journal rewrite rename: %w", err)
	}
	if err := s.fs.SyncDir(); err != nil {
		return fmt.Errorf("genstore: journal rewrite dir sync: %w", err)
	}
	return s.openJournal()
}

// openJournal (re)opens the append handle, stamping a header when the file
// is new or its header write was torn.
func (s *Store) openJournal() error {
	if s.journal != nil {
		_ = s.journal.Close()
		s.journal = nil
	}
	data, err := s.fs.ReadFile(journalName)
	if err != nil || len(data) < journalHeaderLen {
		// Missing or torn-before-header: start fresh. A torn header implies
		// no records were ever written, so nothing is lost.
		f, cerr := s.fs.Create(journalName)
		if cerr != nil {
			return fmt.Errorf("genstore: journal create: %w", cerr)
		}
		if _, werr := f.Write(journalHeader()); werr != nil {
			f.Close()
			return fmt.Errorf("genstore: journal header: %w", werr)
		}
		if serr := f.Sync(); serr != nil {
			f.Close()
			return fmt.Errorf("genstore: journal header sync: %w", serr)
		}
		s.journal = f
		return nil
	}
	f, err := s.fs.OpenAppend(journalName)
	if err != nil {
		return fmt.Errorf("genstore: journal open: %w", err)
	}
	s.journal = f
	return nil
}

// pruneSnapshots removes all but the newest snapshotsKept snapshots.
func (s *Store) pruneSnapshots() error {
	names, err := s.fs.List()
	if err != nil {
		return fmt.Errorf("genstore: list: %w", err)
	}
	snaps := snapNames(names)
	for _, n := range snaps[min(len(snaps), snapshotsKept):] {
		if err := s.fs.Remove(n); err != nil {
			return fmt.Errorf("genstore: prune %s: %w", n, err)
		}
	}
	return nil
}

// snapNames filters and sorts snapshot file names, newest (highest batch
// count) first.
func snapNames(names []string) []string {
	var out []string
	for _, n := range names {
		if strings.HasPrefix(n, snapPrefix) && strings.HasSuffix(n, snapSuffix) && snapSeq(n) >= 0 {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return snapSeq(out[i]) > snapSeq(out[j]) })
	return out
}

func snapName(batches int) string {
	return fmt.Sprintf("%s%08d%s", snapPrefix, batches, snapSuffix)
}

// snapSeq parses the batch count out of a snapshot file name, -1 if
// malformed.
func snapSeq(name string) int {
	mid := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
	if len(mid) != 8 {
		return -1
	}
	n := 0
	for _, c := range mid {
		if c < '0' || c > '9' {
			return -1
		}
		n = n*10 + int(c-'0')
	}
	return n
}
