package genstore

import (
	"bytes"
	"testing"

	"kfusion/internal/fusion"
)

// fuzzSeedState builds a small real state and returns its encoded snapshot
// and a journal with two records — the honest corpus the mutators start from.
func fuzzSeedState() (snap, journal []byte) {
	feed := testFeed(40)
	d := newClaimDriver()
	st := &State{}
	if err := d.apply(st, feed[:20]); err != nil {
		panic(err)
	}
	st.Consumed, st.Batches = 20, 1
	snap = encodeSnapshot(st)
	journal = journalHeader()
	journal = append(journal, encodeRecord(1, feed[20:30])...)
	journal = append(journal, encodeRecord(2, feed[30:])...)
	return snap, journal
}

// FuzzSnapshotDecode asserts decodeSnapshot never panics, and that any input
// it accepts re-encodes and decodes stably (no lossy acceptance).
func FuzzSnapshotDecode(f *testing.F) {
	snap, _ := fuzzSeedState()
	f.Add(snap)
	f.Add(snap[:len(snap)/2])
	flipped := append([]byte(nil), snap...)
	flipped[len(flipped)/3] ^= 0x10
	f.Add(flipped)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := decodeSnapshot(data)
		if err != nil {
			return
		}
		re := encodeSnapshot(st)
		st2, err := decodeSnapshot(re)
		if err != nil {
			t.Fatalf("accepted snapshot failed to re-decode: %v", err)
		}
		if !bytes.Equal(re, encodeSnapshot(st2)) {
			t.Fatal("snapshot re-encode is not a fixed point")
		}
		// A graph that decodes must also fuse without panicking.
		if st.Claim != nil {
			if _, err := st.Claim.Fuse(fusion.VoteConfig()); err != nil {
				t.Fatalf("decoded graph failed to fuse: %v", err)
			}
		}
	})
}

// FuzzJournalParse asserts parseJournal never panics and its accepted prefix
// round-trips: re-encoding the parsed records reproduces the valid bytes.
func FuzzJournalParse(f *testing.F) {
	_, journal := fuzzSeedState()
	f.Add(journal)
	f.Add(journal[:len(journal)-3])
	flipped := append([]byte(nil), journal...)
	flipped[len(flipped)/2] ^= 0x04
	f.Add(flipped)
	f.Add(journalHeader())
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, validLen, _ := parseJournal(data)
		if validLen > len(data) {
			t.Fatalf("validLen %d exceeds input %d", validLen, len(data))
		}
		if len(recs) == 0 {
			return
		}
		re := journalHeader()
		for _, rec := range recs {
			re = append(re, encodeRecord(rec.seq, rec.batch)...)
		}
		if !bytes.Equal(re, data[:validLen]) {
			t.Fatal("journal re-encode differs from accepted prefix")
		}
	})
}
