package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 4, 1, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if math.Abs(s.Mean-2.8) > 1e-12 {
		t.Errorf("mean = %v, want 2.8", s.Mean)
	}
	even := Summarize([]float64{1, 2, 3, 4})
	if even.Median != 2.5 {
		t.Errorf("even median = %v, want 2.5", even.Median)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("empty summary = %+v", z)
	}
	ints := SummarizeInts([]int{2, 2, 8})
	if ints.Median != 2 || ints.Max != 8 {
		t.Errorf("SummarizeInts = %+v", ints)
	}
	if s.String() == "" {
		t.Error("String empty")
	}
}

func TestSummarizeQuickBounds(t *testing.T) {
	// Summarize serves count/probability data; the property holds for any
	// input whose sum stays within float64 range, so the generator maps
	// raw values into a wide-but-finite magnitude band.
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			clean = append(clean, math.Mod(x, 1e15))
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Median && s.Median <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	for _, v := range []float64{0, 0.05, 0.15, 0.95, 1.0, 2.0, -1.0} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Counts[0] != 3 { // 0, 0.05, -1 clamp
		t.Errorf("bucket 0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[9] != 3 { // 0.95, 1.0, 2.0 clamp
		t.Errorf("bucket 9 = %d, want 3", h.Counts[9])
	}
	if h.Counts[1] != 1 {
		t.Errorf("bucket 1 = %d, want 1", h.Counts[1])
	}
	fr := h.Fractions()
	sum := 0.0
	for _, f := range fr {
		sum += f
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("fractions sum = %v", sum)
	}
	if h.BucketLabel(0) == "" {
		t.Error("BucketLabel empty")
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram(5, 5, 0) // both params invalid
	h.Add(5)
	if h.Total() != 1 || len(h.Counts) != 1 {
		t.Errorf("degenerate histogram: %+v", h)
	}
	if f := NewHistogram(0, 1, 4).Fractions(); len(f) != 4 {
		t.Errorf("empty Fractions len = %d", len(f))
	}
}

func TestAccuracyCurve(t *testing.T) {
	c := NewAccuracyCurve()
	for i := 0; i < 10; i++ {
		c.Add(1, i < 3) // 0.3 at x=1
		c.Add(5, i < 8) // 0.8 at x=5
	}
	if r, n := c.Rate(1); n != 10 || math.Abs(r-0.3) > 1e-12 {
		t.Errorf("Rate(1) = %v,%v", r, n)
	}
	if r, n := c.Rate(5); n != 10 || math.Abs(r-0.8) > 1e-12 {
		t.Errorf("Rate(5) = %v,%v", r, n)
	}
	if _, n := c.Rate(99); n != 0 {
		t.Error("Rate(99) should be empty")
	}
	xs := c.Xs()
	if len(xs) != 2 || xs[0] != 1 || xs[1] != 5 {
		t.Errorf("Xs = %v", xs)
	}
	if r, n := c.RateBetween(0, 10); n != 20 || math.Abs(r-0.55) > 1e-12 {
		t.Errorf("RateBetween = %v,%v", r, n)
	}
	b := c.Bucketize(10)
	if r, n := b.Rate(0); n != 20 || math.Abs(r-0.55) > 1e-12 {
		t.Errorf("Bucketize Rate(0) = %v,%v", r, n)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Errorf("q0.5 = %v", q)
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Errorf("q0.25 = %v", q)
	}
	if q := Quantile(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
}
