// Package stats provides the small statistical helpers the corpus analyses
// and figure reproductions share: skew summaries (Table 1's mean/median/min/
// max rows), fixed-width histograms (Figures 4, 5, 16, 19), and bucketed
// accuracy curves (Figures 6, 7, 18, 21).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary captures the skew statistics the paper reports for its heavy-tailed
// distributions.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary over xs. An empty input yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	total := 0.0
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, x := range sorted {
		total += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = total / float64(len(xs))
	if n := len(sorted); n%2 == 1 {
		s.Median = sorted[n/2]
	} else {
		s.Median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	return s
}

// SummarizeInts is Summarize over integer counts.
func SummarizeInts(xs []int) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// String renders the summary as a Table 1-style row.
func (s Summary) String() string {
	return fmt.Sprintf("mean=%.1f median=%.1f min=%.0f max=%.0f", s.Mean, s.Median, s.Min, s.Max)
}

// Histogram is a fixed-width histogram over [Lo, Hi]; values outside the
// range clamp to the edge buckets.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram builds a histogram with n equal-width buckets over [lo, hi].
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 {
		n = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	idx := h.BucketOf(v)
	h.Counts[idx]++
	h.total++
}

// BucketOf returns the bucket index v falls into.
func (h *Histogram) BucketOf(v float64) int {
	n := len(h.Counts)
	if v <= h.Lo {
		return 0
	}
	if v >= h.Hi {
		return n - 1
	}
	idx := int(float64(n) * (v - h.Lo) / (h.Hi - h.Lo))
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// Total reports the number of observations.
func (h *Histogram) Total() int { return h.total }

// Fractions returns each bucket's share of the total (zeros when empty).
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// BucketLabel renders bucket i's range, e.g. "[0.2,0.3)".
func (h *Histogram) BucketLabel(i int) string {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	lo := h.Lo + float64(i)*width
	return fmt.Sprintf("[%.2g,%.2g)", lo, lo+width)
}

// AccuracyCurve accumulates success rates bucketed by an integer x-axis
// (number of extractors, number of URLs, …). Buckets are created on demand.
type AccuracyCurve struct {
	hits  map[int]int
	total map[int]int
}

// NewAccuracyCurve returns an empty curve.
func NewAccuracyCurve() *AccuracyCurve {
	return &AccuracyCurve{hits: make(map[int]int), total: make(map[int]int)}
}

// Add records one observation at x.
func (c *AccuracyCurve) Add(x int, ok bool) {
	c.total[x]++
	if ok {
		c.hits[x]++
	}
}

// Rate returns the success rate at x and the observation count.
func (c *AccuracyCurve) Rate(x int) (float64, int) {
	n := c.total[x]
	if n == 0 {
		return 0, 0
	}
	return float64(c.hits[x]) / float64(n), n
}

// Xs returns the occupied x values in ascending order.
func (c *AccuracyCurve) Xs() []int {
	out := make([]int, 0, len(c.total))
	for x := range c.total {
		out = append(out, x)
	}
	sort.Ints(out)
	return out
}

// RateBetween aggregates the success rate over x in [lo, hi].
func (c *AccuracyCurve) RateBetween(lo, hi int) (float64, int) {
	hits, total := 0, 0
	for x, n := range c.total {
		if x >= lo && x <= hi {
			total += n
			hits += c.hits[x]
		}
	}
	if total == 0 {
		return 0, 0
	}
	return float64(hits) / float64(total), total
}

// Bucketize returns the curve resampled into x-buckets of the given width:
// bucket k covers [k*width, (k+1)*width).
func (c *AccuracyCurve) Bucketize(width int) *AccuracyCurve {
	if width < 1 {
		width = 1
	}
	out := NewAccuracyCurve()
	for x, n := range c.total {
		b := x / width
		out.total[b] += n
		out.hits[b] += c.hits[x]
	}
	return out
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs by linear
// interpolation; it sorts a copy.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
