package world

import (
	"testing"

	"kfusion/internal/kb"
	"kfusion/internal/randx"
)

func testWorld(t testing.TB, seed int64) *World {
	t.Helper()
	w, err := Generate(DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestGenerateValidatesConfig(t *testing.T) {
	bad := DefaultConfig(1)
	bad.NumEntities = 0
	if _, err := Generate(bad); err == nil {
		t.Error("Generate accepted NumEntities=0")
	}
	bad = DefaultConfig(1)
	bad.FactCoverage = 0
	if _, err := Generate(bad); err == nil {
		t.Error("Generate accepted FactCoverage=0")
	}
	bad = DefaultConfig(1)
	bad.PredicatesPerType = [2]int{5, 2}
	if _, err := Generate(bad); err == nil {
		t.Error("Generate accepted inverted PredicatesPerType")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := testWorld(t, 11), testWorld(t, 11)
	at, bt := a.Truth.Triples(), b.Truth.Triples()
	if len(at) == 0 {
		t.Fatal("no facts generated")
	}
	if len(at) != len(bt) {
		t.Fatalf("fact counts differ: %d vs %d", len(at), len(bt))
	}
	for i := range at {
		if at[i] != bt[i] {
			t.Fatalf("fact %d differs: %v vs %v", i, at[i], bt[i])
		}
	}
	if a.Stats() != b.Stats() {
		t.Errorf("stats differ: %q vs %q", a.Stats(), b.Stats())
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, b := testWorld(t, 1), testWorld(t, 2)
	at, bt := a.Truth.Triples(), b.Truth.Triples()
	if len(at) == len(bt) {
		same := true
		for i := range at {
			if at[i] != bt[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical worlds")
		}
	}
}

func TestWorldShape(t *testing.T) {
	w := testWorld(t, 3)
	if w.Ont.NumTypes() < 10 {
		t.Errorf("too few types: %d", w.Ont.NumTypes())
	}
	if w.Ont.NumPredicates() < 40 {
		t.Errorf("too few predicates: %d", w.Ont.NumPredicates())
	}
	if got, want := w.Ont.NumEntities(), w.Cfg.NumEntities; got < want {
		t.Errorf("entities %d < configured %d (locations and twins should only add)", got, want)
	}
	if w.Truth.Len() < 1000 {
		t.Errorf("too few facts: %d", w.Truth.Len())
	}
	wantCities := w.Cfg.Continents * w.Cfg.CountriesPerCont * w.Cfg.StatesPerCountry * w.Cfg.CitiesPerState
	if len(w.Cities) != wantCities {
		t.Errorf("cities = %d, want %d", len(w.Cities), wantCities)
	}
}

func TestFunctionalShareNearConfig(t *testing.T) {
	w := testWorld(t, 4)
	share := w.FunctionalShare()
	if share < 0.12 || share > 0.45 {
		t.Errorf("functional share %.2f too far from configured %.2f", share, w.Cfg.FunctionalFraction)
	}
}

func TestFunctionalItemsHaveOneTruth(t *testing.T) {
	w := testWorld(t, 5)
	w.Truth.ForEachItem(func(d kb.DataItem, objs []kb.Object) {
		p := w.Ont.Predicate(d.Predicate)
		if p == nil {
			t.Fatalf("fact with unknown predicate %s", d.Predicate)
		}
		if p.Functional && len(objs) != 1 {
			t.Errorf("functional item %v has %d values", d, len(objs))
		}
		if len(objs) > w.Cfg.MaxCardinality {
			t.Errorf("item %v exceeds MaxCardinality: %d", d, len(objs))
		}
	})
}

func TestLocationHierarchyDepths(t *testing.T) {
	w := testWorld(t, 6)
	for _, c := range w.Cities {
		if d := w.Hier.Depth(c); d != 3 {
			t.Fatalf("city %s depth = %d, want 3", c, d)
		}
	}
}

func TestIsTrueAcceptsAncestors(t *testing.T) {
	w := testWorld(t, 7)
	checked := 0
	for _, tr := range w.Truth.Triples() {
		p := w.Ont.Predicate(tr.Predicate)
		if !p.Hierarchical {
			continue
		}
		base, ok := tr.Object.Entity()
		if !ok {
			t.Fatalf("hierarchical fact with non-entity object: %v", tr)
		}
		if !w.IsTrue(tr) {
			t.Fatalf("canonical fact not true: %v", tr)
		}
		for _, anc := range w.Hier.Ancestors(base) {
			gen := tr
			gen.Object = kb.EntityObject(anc)
			if !w.IsTrue(gen) {
				t.Fatalf("generalization %v of %v not true", gen, tr)
			}
		}
		checked++
		if checked > 50 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no hierarchical facts to check")
	}
}

func TestIsTrueRejectsWrongValues(t *testing.T) {
	w := testWorld(t, 8)
	src := randx.New(99)
	rejected := 0
	for _, tr := range w.Truth.Triples()[:200] {
		avoid := map[kb.Object]bool{}
		for _, o := range w.Truth.Objects(tr.Item()) {
			avoid[o] = true
		}
		wrong := w.WrongValue(src, tr.Predicate, avoid)
		if avoid[wrong] {
			continue // pool fallback may rarely collide; skip
		}
		bad := tr
		bad.Object = wrong
		if !w.IsTrue(bad) {
			rejected++
		}
	}
	if rejected < 150 {
		t.Errorf("only %d/200 wrong values rejected; WrongValue or IsTrue too lax", rejected)
	}
}

func TestConfusables(t *testing.T) {
	w := testWorld(t, 9)
	src := randx.New(1)
	found := 0
	for _, e := range w.Ont.Entities() {
		if c, ok := w.Confusable(src, e); ok {
			found++
			if c == e {
				t.Fatalf("entity %s confusable with itself", e)
			}
			if w.Ont.Entity(c) == nil {
				t.Fatalf("confusable %s not registered", c)
			}
		}
	}
	if found < w.Cfg.NumEntities/20 {
		t.Errorf("too few confusable entities: %d", found)
	}
}

func TestSiblingPredicates(t *testing.T) {
	w := testWorld(t, 10)
	src := randx.New(2)
	withSibling := 0
	for _, pid := range w.Ont.Predicates() {
		if s, ok := w.SiblingPredicate(src, pid); ok {
			withSibling++
			p, q := w.Ont.Predicate(pid), w.Ont.Predicate(s)
			if p.SubjectType != q.SubjectType || p.Domain != q.Domain {
				t.Fatalf("sibling mismatch: %v vs %v", p, q)
			}
		}
	}
	if withSibling == 0 {
		t.Error("no predicate has siblings; predicate-linkage errors impossible")
	}
}

func TestPopularitySampler(t *testing.T) {
	w := testWorld(t, 12)
	src := randx.New(3)
	counts := map[kb.EntityID]int{}
	for i := 0; i < 20000; i++ {
		counts[w.SampleEntity(src)]++
	}
	rank := w.PopularityRank()
	head, tail := counts[rank[0]], counts[rank[len(rank)-1]]
	if head <= tail {
		t.Errorf("popularity not skewed: head=%d tail=%d", head, tail)
	}
	if w.Popularity(rank[0]) <= w.Popularity(rank[len(rank)-1]) {
		t.Error("popularity weights not ordered by rank")
	}
}

func TestDifficultyRange(t *testing.T) {
	w := testWorld(t, 13)
	if len(w.Difficulty) != w.Ont.NumPredicates() {
		t.Fatalf("difficulty for %d predicates, want %d", len(w.Difficulty), w.Ont.NumPredicates())
	}
	for p, d := range w.Difficulty {
		if d < 0 || d > 1 {
			t.Errorf("difficulty[%s] = %v out of range", p, d)
		}
	}
}

func TestBuildFreebaseSubsetAndDeterministic(t *testing.T) {
	w := testWorld(t, 14)
	fb1, fb2 := BuildFreebase(w), BuildFreebase(w)
	if fb1.Store.Len() != fb2.Store.Len() {
		t.Fatalf("snapshot not deterministic: %d vs %d", fb1.Store.Len(), fb2.Store.Len())
	}
	if fb1.Store.Len() == 0 {
		t.Fatal("empty snapshot")
	}
	if fb1.Store.Len() >= w.Truth.Len() {
		t.Errorf("snapshot (%d) not smaller than truth (%d)", fb1.Store.Len(), w.Truth.Len())
	}
	// Most snapshot triples should be true (wrong-value rate is ~1%, and
	// generalized hierarchical values are still true).
	wrong := 0
	for _, tr := range fb1.Store.Triples() {
		if !w.IsTrue(tr) {
			wrong++
		}
	}
	frac := float64(wrong) / float64(fb1.Store.Len())
	if frac > 0.05 {
		t.Errorf("%.1f%% of snapshot triples are wrong, want <5%%", 100*frac)
	}
	if len(fb1.WrongItems) == 0 && w.Cfg.Freebase.WrongValueRate > 0 {
		t.Log("note: no wrong items sampled in snapshot (possible at small scale)")
	}
}

func TestBuildFreebaseHeadBias(t *testing.T) {
	w := testWorld(t, 15)
	fb := BuildFreebase(w)
	rank := w.PopularityRank()
	n := len(rank)
	headCovered, headTotal := 0, 0
	tailCovered, tailTotal := 0, 0
	for i, e := range rank {
		covered := len(fb.Store.PredicatesOf(e)) > 0
		hasFacts := len(w.Truth.PredicatesOf(e)) > 0
		if !hasFacts {
			continue
		}
		if i < n/5 {
			headTotal++
			if covered {
				headCovered++
			}
		} else if i > 4*n/5 {
			tailTotal++
			if covered {
				tailCovered++
			}
		}
	}
	if headTotal == 0 || tailTotal == 0 {
		t.Skip("not enough entities with facts")
	}
	headRate := float64(headCovered) / float64(headTotal)
	tailRate := float64(tailCovered) / float64(tailTotal)
	if headRate <= tailRate {
		t.Errorf("head coverage %.2f not above tail coverage %.2f", headRate, tailRate)
	}
}
