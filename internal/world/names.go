package world

import (
	"strconv"
	"strings"

	"kfusion/internal/randx"
)

// nameGen synthesizes human-readable names for entities. Names matter because
// the extractors' entity-linkage simulator works over *mentions*: confusable
// entities get near-identical names, and the linker resolves names back to
// IDs, sometimes wrongly — exactly the error class the paper attributes 44%
// of extraction errors to (§3.2.1).
type nameGen struct {
	src *randx.Source
}

var (
	firstNames = []string{
		"Tom", "Maria", "Wei", "Aisha", "Lucas", "Emma", "Hiro", "Olga",
		"Raj", "Elena", "Sam", "Nina", "Diego", "Amara", "Ivan", "Lucia",
		"Omar", "Freya", "Kofi", "Mia", "Jun", "Zara", "Paul", "Ida",
	}
	lastNames = []string{
		"Cruise", "Garcia", "Zhang", "Okafor", "Silva", "Novak", "Tanaka",
		"Petrov", "Patel", "Rossi", "Walker", "Larsen", "Mendez", "Diallo",
		"Kim", "Moreau", "Haddad", "Lindqvist", "Mensah", "Costa", "Sato",
		"Volkov", "Iyer", "Ricci",
	}
	placeSyllables = []string{
		"syra", "cuse", "spring", "field", "river", "ton", "new", "port",
		"lake", "wood", "bridge", "ham", "clif", "ford", "glen", "dale",
		"oak", "hill", "fair", "view", "ash", "burn", "mill", "brook",
	}
	orgWords = []string{
		"Acme", "Global", "United", "Pioneer", "Summit", "Vertex", "Nova",
		"Atlas", "Orion", "Beacon", "Cascade", "Harbor", "Keystone", "Zenith",
	}
	orgSuffixes = []string{"Corp", "Inc", "Group", "Labs", "Partners", "Media", "Systems", "Works"}
	titleWords  = []string{
		"Silent", "Golden", "Last", "First", "Hidden", "Broken", "Distant",
		"Crimson", "Winter", "Summer", "Lost", "Burning", "Quiet", "Iron",
		"Night", "Star", "River", "Stone", "Echo", "Dawn", "Shadow", "Glass",
		"Sky", "Ember",
	}
	titleNouns = []string{
		"Road", "Garden", "Empire", "Voyage", "Letter", "Horizon", "Mirror",
		"Season", "Harvest", "Signal", "Crossing", "Anthem", "Archive",
		"Meridian", "Paradox", "Covenant",
	}
)

func pick(src *randx.Source, words []string) string { return words[src.Intn(len(words))] }

// personName returns e.g. "Tom Cruise".
func (g nameGen) personName() string {
	return pick(g.src, firstNames) + " " + pick(g.src, lastNames)
}

// personVariant returns a confusable variant of a person name, e.g.
// "Tom Cruise" → "Tom W. Cruise" or "Tom Cruise Jr".
func (g nameGen) personVariant(name string) string {
	parts := strings.SplitN(name, " ", 2)
	switch g.src.Intn(3) {
	case 0:
		initial := string(rune('A' + g.src.Intn(26)))
		if len(parts) == 2 {
			return parts[0] + " " + initial + ". " + parts[1]
		}
		return name + " " + initial + "."
	case 1:
		return name + " Jr"
	default:
		if len(parts) == 2 {
			return pick(g.src, firstNames) + " " + parts[1]
		}
		return name + " II"
	}
}

// placeName returns e.g. "Springfield" or "Oakbridge".
func (g nameGen) placeName() string {
	a := pick(g.src, placeSyllables)
	b := pick(g.src, placeSyllables)
	for b == a {
		b = pick(g.src, placeSyllables)
	}
	return strings.ToUpper(a[:1]) + a[1:] + b
}

// orgName returns e.g. "Vertex Labs".
func (g nameGen) orgName() string {
	return pick(g.src, orgWords) + " " + pick(g.src, orgSuffixes)
}

// titleName returns e.g. "The Silent Horizon" (for films, books, albums).
func (g nameGen) titleName() string {
	t := pick(g.src, titleWords) + " " + pick(g.src, titleNouns)
	if g.src.Bool(0.4) {
		return "The " + t
	}
	return t
}

// titleVariant returns a confusable variant of a title — the Broadway-show
// vs novel collision of §3.2.1 ("Les Miserables").
func (g nameGen) titleVariant(name string) string {
	switch g.src.Intn(3) {
	case 0:
		return name + " II"
	case 1:
		if trimmed := strings.TrimPrefix(name, "The "); trimmed != name {
			return trimmed
		}
		return "The " + name
	default:
		return name + ": " + pick(g.src, titleNouns)
	}
}

// stringValue returns a free-text object value for string-domain predicates.
func (g nameGen) stringValue(attr string) string {
	switch {
	case strings.Contains(attr, "date"):
		return g.dateValue()
	case strings.Contains(attr, "genre"):
		return pick(g.src, []string{"drama", "comedy", "thriller", "documentary", "romance", "action", "mystery", "biography"})
	case strings.Contains(attr, "language"):
		return pick(g.src, []string{"English", "Mandarin", "Spanish", "Hindi", "Arabic", "Portuguese", "Russian", "Japanese"})
	case strings.Contains(attr, "currency"):
		return pick(g.src, []string{"dollar", "euro", "yen", "rupee", "peso", "franc", "krona", "dinar"})
	default:
		return pick(g.src, titleWords) + " " + pick(g.src, placeSyllables)
	}
}

// dateValue returns a date string like "7/3/1962".
func (g nameGen) dateValue() string {
	m := 1 + g.src.Intn(12)
	d := 1 + g.src.Intn(28)
	y := 1900 + g.src.Intn(120)
	return strconv.Itoa(m) + "/" + strconv.Itoa(d) + "/" + strconv.Itoa(y)
}
