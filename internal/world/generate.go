package world

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"kfusion/internal/kb"
	"kfusion/internal/randx"
)

// nameKind selects which name generator a type uses for its entities.
type nameKind uint8

const (
	nkPerson nameKind = iota
	nkPlace
	nkOrg
	nkTitle
)

type typeSpec struct {
	domain string
	name   string
	kind   nameKind
	// weight biases how many of Config.NumEntities land in this type; the
	// Zipf skew is applied over the catalog order below.
	weight float64
}

// typeCatalog mirrors the paper's observation that types span "geography,
// business, book, music, sports, people, biology, etc." and that the top
// types (location, organization, business) dominate entity counts.
var typeCatalog = []typeSpec{
	{"organization", "organization", nkOrg, 0},
	{"business", "company", nkOrg, 0},
	{"people", "person", nkPerson, 0},
	{"film", "film", nkTitle, 0},
	{"film", "actor", nkPerson, 0},
	{"film", "director", nkPerson, 0},
	{"book", "book", nkTitle, 0},
	{"book", "author", nkPerson, 0},
	{"music", "album", nkTitle, 0},
	{"music", "artist", nkPerson, 0},
	{"sports", "team", nkOrg, 0},
	{"sports", "athlete", nkPerson, 0},
	{"tv", "program", nkTitle, 0},
	{"education", "university", nkOrg, 0},
	{"geography", "mountain", nkPlace, 0},
	{"geography", "river", nkPlace, 0},
	{"biology", "species", nkPlace, 0},
	{"government", "politician", nkPerson, 0},
	{"medicine", "hospital", nkOrg, 0},
	{"computer", "software", nkTitle, 0},
	{"automotive", "model", nkTitle, 0},
	{"food", "dish", nkTitle, 0},
	{"astronomy", "star", nkPlace, 0},
	{"theater", "play", nkTitle, 0},
}

// LocationType is the type carried by every entity in the location hierarchy.
const LocationType kb.TypeID = "/location/location"

// Attribute-name pools per value domain. Predicate linkage errors swap a
// predicate for a "sibling" drawn from the same pool (book author vs book
// editor in the paper's example).
var (
	entityAttrs = []string{
		"created_by", "member_of", "parent", "partner", "affiliated_with",
		"influenced_by", "spouse", "children", "employer", "founder",
		"notable_work", "award", "editor", "author_of", "rival",
	}
	locationAttrs = []string{
		"birth_place", "headquarters", "location", "place_of_death",
		"origin", "based_in", "venue", "hometown", "filmed_at",
	}
	stringAttrs = []string{
		"birth_date", "release_date", "founded_date", "genre", "language",
		"currency", "description", "motto", "nickname", "slogan", "subtitle",
		"death_date",
	}
	numberAttrs = []string{
		"height_meters", "population", "founded_year", "release_year",
		"employees", "revenue_musd", "area_km2", "elevation_m", "runtime_min",
		"page_count", "track_count", "capacity",
	}
)

// World is the generated ground truth plus the lookup structure the Web,
// extractor and evaluation layers need.
type World struct {
	Cfg  Config
	Ont  *kb.Ontology
	Hier *kb.Hierarchy

	// Truth holds every canonical true triple. For hierarchical predicates
	// the canonical value is the most specific one; IsTrue additionally
	// accepts its ancestors.
	Truth *kb.Store

	// Difficulty maps each predicate to an extraction difficulty in [0,1]
	// that scales extractor error rates, producing the wide per-predicate
	// accuracy spread of Figure 4.
	Difficulty map[kb.PredicateID]float64

	// Cities are the leaf locations (used to seed hierarchical values).
	Cities []kb.EntityID

	popularity  map[kb.EntityID]float64
	popSampler  *randx.Categorical
	popOrder    []kb.EntityID
	confusables map[kb.EntityID][]kb.EntityID
	siblings    map[kb.PredicateID][]kb.PredicateID
	valuePool   map[kb.PredicateID][]kb.Object
}

// Generate builds a world from cfg. It panics only on internal invariant
// violations; configuration problems are reported as errors.
func Generate(cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := &World{
		Cfg:         cfg,
		Ont:         kb.NewOntology(),
		Hier:        kb.NewHierarchy(),
		Truth:       kb.NewStore(),
		Difficulty:  make(map[kb.PredicateID]float64),
		popularity:  make(map[kb.EntityID]float64),
		confusables: make(map[kb.EntityID][]kb.EntityID),
		siblings:    make(map[kb.PredicateID][]kb.PredicateID),
		valuePool:   make(map[kb.PredicateID][]kb.Object),
	}
	root := randx.New(cfg.Seed)
	w.buildTypes()
	w.buildLocations(root.Split("locations"))
	w.buildEntities(root.Split("entities"))
	w.buildPredicates(root.Split("predicates"))
	w.buildConfusables(root.Split("confusables"))
	w.buildFacts(root.Split("facts"))
	w.buildPopularity(root.Split("popularity"))
	return w, nil
}

// MustGenerate is Generate for callers with static configs (tests, benches).
func MustGenerate(cfg Config) *World {
	w, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

func (w *World) buildTypes() {
	w.Ont.AddType(kb.Type{ID: LocationType, Domain: "location", Name: "location"})
	for _, ts := range typeCatalog {
		id := kb.TypeID("/" + ts.domain + "/" + ts.name)
		w.Ont.AddType(kb.Type{ID: id, Domain: ts.domain, Name: ts.name})
	}
}

// buildLocations creates the containment hierarchy continent → country →
// state → city. Some cities deliberately share names ("Paris, Texas") to
// exercise entity-linkage ambiguity.
func (w *World) buildLocations(src *randx.Source) {
	gen := nameGen{src: src.Split("names")}
	var mint func(level string, n int, parent kb.EntityID, depth int)
	counter := 0
	var cityNames []string
	mint = func(level string, n int, parent kb.EntityID, depth int) {
		for i := 0; i < n; i++ {
			counter++
			id := kb.EntityID("/m/loc" + strconv.FormatInt(int64(counter), 36))
			name := gen.placeName()
			if level == "city" && len(cityNames) > 0 && src.Bool(w.Cfg.DuplicateCityRate) {
				name = cityNames[src.Intn(len(cityNames))]
			}
			w.Ont.AddEntity(kb.Entity{ID: id, Name: name, Types: []kb.TypeID{LocationType}})
			if parent != "" {
				w.Hier.SetParent(id, parent)
			}
			switch level {
			case "continent":
				mint("country", w.Cfg.CountriesPerCont, id, depth+1)
			case "country":
				mint("state", w.Cfg.StatesPerCountry, id, depth+1)
			case "state":
				mint("city", w.Cfg.CitiesPerState, id, depth+1)
			case "city":
				cityNames = append(cityNames, name)
				w.Cities = append(w.Cities, id)
			}
		}
	}
	mint("continent", w.Cfg.Continents, "", 0)
}

// buildEntities distributes Config.NumEntities over the non-location types
// with Zipf skew, reproducing Table 1's heavy head (a few types hold most
// entities) and long tail.
func (w *World) buildEntities(src *randx.Source) {
	gen := nameGen{src: src.Split("names")}
	nTypes := len(typeCatalog)
	zipf := src.NewZipf(w.Cfg.EntityZipfExponent, nTypes)
	counts := make([]int, nTypes)
	for i := 0; i < w.Cfg.NumEntities; i++ {
		counts[zipf.Next()]++
	}
	counter := 0
	for ti, ts := range typeCatalog {
		typeID := kb.TypeID("/" + ts.domain + "/" + ts.name)
		for i := 0; i < counts[ti]; i++ {
			counter++
			id := kb.EntityID("/m/0" + strconv.FormatInt(int64(counter), 36))
			var name string
			switch ts.kind {
			case nkPerson:
				name = gen.personName()
			case nkPlace:
				name = gen.placeName()
			case nkOrg:
				name = gen.orgName()
			default:
				name = gen.titleName()
			}
			types := []kb.TypeID{typeID}
			// A slice of people are also actors/authors/etc.; give ~10% of
			// entities a second type, mirroring "one or several types".
			if src.Bool(0.1) {
				other := typeCatalog[src.Intn(nTypes)]
				otherID := kb.TypeID("/" + other.domain + "/" + other.name)
				if otherID != typeID && other.kind == ts.kind {
					types = append(types, otherID)
				}
			}
			w.Ont.AddEntity(kb.Entity{ID: id, Name: name, Types: types})
		}
	}
}

// buildPredicates mints the per-type schema with the configured functional
// fraction and assigns every predicate an extraction difficulty.
func (w *World) buildPredicates(src *randx.Source) {
	domainPick := randx.NewCategorical([]float64{0.25, 0.2, 0.3, 0.25}) // entity, location-entity, string, number
	for _, tid := range w.Ont.Types() {
		tsrc := src.Split(string(tid))
		n := w.Cfg.PredicatesPerType[0]
		if spread := w.Cfg.PredicatesPerType[1] - w.Cfg.PredicatesPerType[0]; spread > 0 {
			n += tsrc.Intn(spread + 1)
		}
		used := map[string]bool{}
		for i := 0; i < n; i++ {
			var (
				attr   string
				domain kb.ValueDomain
				objTyp kb.TypeID
				hier   bool
			)
			switch domainPick.Sample(tsrc) {
			case 0:
				attr = freshAttr(tsrc, entityAttrs, used)
				domain = kb.DomainEntity
				objTyp = w.randomObjectType(tsrc)
			case 1:
				attr = freshAttr(tsrc, locationAttrs, used)
				domain = kb.DomainEntity
				objTyp = LocationType
				hier = true
			case 2:
				attr = freshAttr(tsrc, stringAttrs, used)
				domain = kb.DomainString
			default:
				attr = freshAttr(tsrc, numberAttrs, used)
				domain = kb.DomainNumber
			}
			functional := tsrc.Bool(w.Cfg.FunctionalFraction)
			card := 1.0
			if !functional {
				// Geometric-ish with mean ≈ 1.8, capped: Figure 20 shows
				// most data items have only 1-2 truths.
				k := 1
				for k < w.Cfg.MaxCardinality && tsrc.Bool(0.42) {
					k++
				}
				card = float64(k)
				if card == 1 {
					card = 1.3 // non-functional predicates still admit >1 sometimes
				}
			}
			p := kb.Predicate{
				ID:           kb.PredicateID(string(tid) + "/" + attr),
				SubjectType:  tid,
				Domain:       domain,
				ObjectType:   objTyp,
				Functional:   functional,
				Cardinality:  card,
				Hierarchical: hier,
			}
			w.Ont.AddPredicate(p)
			// Difficulty skewed high: Figure 4 reports 44% of predicates
			// with accuracy below 0.3 and only 13% above 0.7.
			d := tsrc.Float64()
			w.Difficulty[p.ID] = d * d * 0.9
		}
	}
	// Sibling tables for predicate-linkage errors: same subject type, same
	// value domain.
	for _, tid := range w.Ont.Types() {
		preds := w.Ont.PredicatesOfType(tid)
		for _, p := range preds {
			for _, q := range preds {
				if p.ID != q.ID && p.Domain == q.Domain && p.Hierarchical == q.Hierarchical {
					w.siblings[p.ID] = append(w.siblings[p.ID], q.ID)
				}
			}
		}
	}
}

func freshAttr(src *randx.Source, pool []string, used map[string]bool) string {
	for try := 0; try < 4; try++ {
		a := pool[src.Intn(len(pool))]
		if !used[a] {
			used[a] = true
			return a
		}
	}
	for i := 2; ; i++ {
		a := pool[src.Intn(len(pool))] + "_" + strconv.Itoa(i)
		if !used[a] {
			used[a] = true
			return a
		}
	}
}

func (w *World) randomObjectType(src *randx.Source) kb.TypeID {
	ts := typeCatalog[src.Intn(len(typeCatalog))]
	return kb.TypeID("/" + ts.domain + "/" + ts.name)
}

// buildConfusables mints near-duplicate-name twins for a fraction of
// entities and registers same-name locations as mutually confusable.
func (w *World) buildConfusables(src *randx.Source) {
	gen := nameGen{src: src.Split("names")}
	ids := append([]kb.EntityID(nil), w.Ont.Entities()...)
	counter := 0
	for _, id := range ids {
		if !src.Bool(w.Cfg.ConfusableFraction) {
			continue
		}
		e := w.Ont.Entity(id)
		if len(e.Types) == 0 {
			continue
		}
		counter++
		twinID := kb.EntityID("/m/tw" + strconv.FormatInt(int64(counter), 36))
		var twinName string
		if strings.HasPrefix(string(e.Types[0]), "/people") || strings.Contains(e.Name, " ") && !strings.HasPrefix(string(e.Types[0]), "/location") {
			twinName = gen.personVariant(e.Name)
		} else {
			twinName = gen.titleVariant(e.Name)
		}
		w.Ont.AddEntity(kb.Entity{ID: twinID, Name: twinName, Types: e.Types})
		w.confusables[id] = append(w.confusables[id], twinID)
		w.confusables[twinID] = append(w.confusables[twinID], id)
	}
	// Locations sharing a name are confusable with each other.
	byName := map[string][]kb.EntityID{}
	for _, id := range w.Ont.EntitiesOfType(LocationType) {
		byName[w.Ont.Entity(id).Name] = append(byName[w.Ont.Entity(id).Name], id)
	}
	for _, group := range byName {
		if len(group) < 2 {
			continue
		}
		for _, a := range group {
			for _, b := range group {
				if a != b {
					w.confusables[a] = append(w.confusables[a], b)
				}
			}
		}
	}
}

// buildFacts generates the true triples.
func (w *World) buildFacts(src *randx.Source) {
	gen := nameGen{src: src.Split("values")}
	perTypeSamplers := map[kb.TypeID]*randx.Zipf{}
	entsOf := func(t kb.TypeID) []kb.EntityID { return w.Ont.EntitiesOfType(t) }

	for _, eid := range w.Ont.Entities() {
		esrc := src.Split(string(eid))
		ent := w.Ont.Entity(eid)
		for _, tid := range ent.Types {
			for _, p := range w.Ont.PredicatesOfType(tid) {
				// Coverage jitters per (entity, predicate); extraction
				// difficulty affects the extractors, not the truth itself.
				cov := w.Cfg.FactCoverage * (0.6 + 0.8*esrc.Float64())
				if cov > 1 {
					cov = 1
				}
				if !esrc.Bool(cov) {
					continue
				}
				nValues := 1
				if !p.Functional {
					nValues = 1
					for float64(nValues) < p.Cardinality+2 && nValues < w.Cfg.MaxCardinality && esrc.Bool(1-1/p.Cardinality) {
						nValues++
					}
				}
				seen := map[kb.Object]bool{}
				for v := 0; v < nValues; v++ {
					obj := w.mintValue(esrc, gen, p, perTypeSamplers, entsOf)
					if obj.IsZero() || seen[obj] {
						continue
					}
					seen[obj] = true
					t := kb.Triple{Subject: eid, Predicate: p.ID, Object: obj}
					if w.Truth.Add(t) {
						w.valuePool[p.ID] = append(w.valuePool[p.ID], obj)
					}
				}
			}
		}
	}
}

// mintValue draws one plausible true value for predicate p.
func (w *World) mintValue(src *randx.Source, gen nameGen, p *kb.Predicate, samplers map[kb.TypeID]*randx.Zipf, entsOf func(kb.TypeID) []kb.EntityID) kb.Object {
	switch p.Domain {
	case kb.DomainEntity:
		if p.Hierarchical {
			return kb.EntityObject(w.mintLocation(src))
		}
		pool := entsOf(p.ObjectType)
		if len(pool) == 0 {
			pool = entsOf(LocationType)
		}
		z, ok := samplers[p.ObjectType]
		if !ok {
			z = src.NewZipf(1.2, len(pool))
			samplers[p.ObjectType] = z
		}
		idx := z.Next()
		if idx >= len(pool) {
			idx = len(pool) - 1
		}
		return kb.EntityObject(pool[idx])
	case kb.DomainNumber:
		return kb.NumberObject(mintNumber(src, p.ID))
	default:
		return kb.StringObject(gen.stringValue(attrOf(p.ID)))
	}
}

// mintLocation picks a hierarchical value: usually a city, sometimes a state
// or country directly — so "the world" itself sometimes only knows a general
// location, as happens in Freebase.
func (w *World) mintLocation(src *randx.Source) kb.EntityID {
	city := w.Cities[src.Intn(len(w.Cities))]
	switch {
	case src.Bool(0.72):
		return city
	case src.Bool(0.6):
		if p := w.Hier.Parent(city); p != "" {
			return p
		}
		return city
	default:
		if p := w.Hier.Parent(city); p != "" {
			if pp := w.Hier.Parent(p); pp != "" {
				return pp
			}
			return p
		}
		return city
	}
}

func attrOf(p kb.PredicateID) string {
	s := string(p)
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		return s[i+1:]
	}
	return s
}

func mintNumber(src *randx.Source, p kb.PredicateID) float64 {
	attr := attrOf(p)
	switch {
	case strings.Contains(attr, "year"):
		return float64(1900 + src.Intn(125))
	case strings.Contains(attr, "population"), strings.Contains(attr, "employees"), strings.Contains(attr, "capacity"):
		return float64(int(src.LogNormal01(9, 2)))
	case strings.Contains(attr, "height"), strings.Contains(attr, "elevation"):
		return float64(1 + src.Intn(8000))
	default:
		return float64(1 + src.Intn(1000))
	}
}

// buildPopularity assigns every entity a Zipf popularity weight; popular
// entities are mentioned on more pages and covered better by Freebase
// (Table 1: 5 entities account for >1M triples while 56% have ≤10).
func (w *World) buildPopularity(src *randx.Source) {
	ids := append([]kb.EntityID(nil), w.Ont.Entities()...)
	// Shuffle so popularity is independent of generation order, then assign
	// rank-based weights.
	src.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	weights := make([]float64, len(ids))
	for rank, id := range ids {
		wgt := 1.0 / math.Pow(float64(rank+1), 1.05)
		w.popularity[id] = wgt
		weights[rank] = wgt
	}
	w.popOrder = ids
	w.popSampler = randx.NewCategorical(weights)
}

// SampleEntity draws an entity with probability proportional to popularity.
func (w *World) SampleEntity(src *randx.Source) kb.EntityID {
	return w.popOrder[w.popSampler.Sample(src)]
}

// Popularity returns the entity's popularity weight (0 for unknown IDs).
func (w *World) Popularity(e kb.EntityID) float64 { return w.popularity[e] }

// PopularityRank returns entities ordered from most to least popular.
func (w *World) PopularityRank() []kb.EntityID { return w.popOrder }

// IsTrue reports whether a triple is consistent with the ground truth. Exact
// canonical triples are true; for hierarchical predicates, ancestors of a
// canonical value are also true ("born in California" when the truth is "born
// in San Francisco", §5.4).
func (w *World) IsTrue(t kb.Triple) bool {
	if w.Truth.Has(t) {
		return true
	}
	p := w.Ont.Predicate(t.Predicate)
	if p == nil || !p.Hierarchical {
		return false
	}
	obj, ok := t.Object.Entity()
	if !ok {
		return false
	}
	for _, truth := range w.Truth.Objects(t.Item()) {
		if base, ok := truth.Entity(); ok && w.Hier.IsAncestor(obj, base) {
			return true
		}
	}
	return false
}

// TrueObjects returns the canonical true objects for a data item.
func (w *World) TrueObjects(d kb.DataItem) []kb.Object { return w.Truth.Objects(d) }

// Confusable returns a random entity confusable with e, if any exists.
func (w *World) Confusable(src *randx.Source, e kb.EntityID) (kb.EntityID, bool) {
	c := w.confusables[e]
	if len(c) == 0 {
		return "", false
	}
	return c[src.Intn(len(c))], true
}

// HasConfusable reports whether e has at least one confusable twin.
func (w *World) HasConfusable(e kb.EntityID) bool { return len(w.confusables[e]) > 0 }

// SiblingPredicate returns a random predicate confusable with p (same
// subject type and value domain), if any exists.
func (w *World) SiblingPredicate(src *randx.Source, p kb.PredicateID) (kb.PredicateID, bool) {
	s := w.siblings[p]
	if len(s) == 0 {
		return "", false
	}
	return s[src.Intn(len(s))], true
}

// WrongValue draws a plausible-but-false value for predicate p, avoiding the
// objects in avoid. Drawing from the predicate's observed value pool makes
// popular values popular among errors too, which is the regime POPACCU's
// popularity-aware false-value model targets.
func (w *World) WrongValue(src *randx.Source, p kb.PredicateID, avoid map[kb.Object]bool) kb.Object {
	pool := w.valuePool[p]
	for try := 0; try < 8 && len(pool) > 0; try++ {
		v := pool[src.Intn(len(pool))]
		if !avoid[v] {
			return v
		}
	}
	// Fall back to a fresh fabricated value.
	pred := w.Ont.Predicate(p)
	if pred == nil {
		return kb.StringObject("unknown-" + strconv.FormatInt(src.Int63()%100000, 10))
	}
	switch pred.Domain {
	case kb.DomainNumber:
		return kb.NumberObject(mintNumber(src, p))
	case kb.DomainEntity:
		if pred.Hierarchical {
			return kb.EntityObject(w.mintLocation(src))
		}
		pool := w.Ont.EntitiesOfType(pred.ObjectType)
		if len(pool) == 0 {
			return kb.StringObject("unknown-" + strconv.FormatInt(src.Int63()%100000, 10))
		}
		return kb.EntityObject(pool[src.Intn(len(pool))])
	default:
		g := nameGen{src: src}
		return kb.StringObject(g.stringValue(attrOf(p)))
	}
}

// Stats summarizes the world for documentation and the Table 1 benchmark.
func (w *World) Stats() string {
	var b strings.Builder
	fmt.Fprintf(&b, "types=%d predicates=%d entities=%d facts=%d items=%d",
		w.Ont.NumTypes(), w.Ont.NumPredicates(), w.Ont.NumEntities(), w.Truth.Len(), w.Truth.NumItems())
	return b.String()
}

// FunctionalShare returns the fraction of predicates that are functional.
func (w *World) FunctionalShare() float64 {
	total, fn := 0, 0
	for _, pid := range w.Ont.Predicates() {
		total++
		if w.Ont.Predicate(pid).Functional {
			fn++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(fn) / float64(total)
}

// sortedPredicates returns predicate IDs sorted for deterministic iteration.
func (w *World) sortedPredicates() []kb.PredicateID {
	ids := append([]kb.PredicateID(nil), w.Ont.Predicates()...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
