package world

import (
	"kfusion/internal/kb"
	"kfusion/internal/randx"
)

// Snapshot is the incomplete trusted KB ("Freebase") carved out of the
// ground truth. It is deliberately imperfect in the four ways §4.4's error
// analysis documents: missing tail entities, missing extra values of
// non-functional items, general-instead-of-specific hierarchical values, and
// a small rate of outright wrong values.
type Snapshot struct {
	Store *kb.Store

	// WrongItems marks data items whose snapshot value is known-wrong
	// relative to the ground truth (kept so the mechanical error analysis
	// can attribute false positives to "wrong value in Freebase").
	WrongItems map[kb.DataItem]bool

	// Generalized marks items where the snapshot stores an ancestor of the
	// true specific value.
	Generalized map[kb.DataItem]bool
}

// BuildFreebase carves the snapshot from the world using w.Cfg.Freebase.
// The same world always yields the same snapshot.
func BuildFreebase(w *World) *Snapshot {
	cfg := w.Cfg.Freebase
	src := randx.New(w.Cfg.Seed).Split("freebase")
	snap := &Snapshot{
		Store:       kb.NewStore(),
		WrongItems:  make(map[kb.DataItem]bool),
		Generalized: make(map[kb.DataItem]bool),
	}

	// Inclusion probability interpolates from head to tail coverage by
	// popularity rank.
	rank := w.PopularityRank()
	n := len(rank)
	included := make(map[kb.EntityID]bool, n)
	for i, e := range rank {
		frac := 0.0
		if n > 1 {
			frac = float64(i) / float64(n-1)
		}
		p := cfg.HeadEntityCoverage + frac*(cfg.TailEntityCoverage-cfg.HeadEntityCoverage)
		if src.SplitN("ent", int64(i)).Bool(p) {
			included[e] = true
		}
	}

	w.Truth.ForEachItem(func(d kb.DataItem, objs []kb.Object) {
		if !included[d.Subject] {
			return
		}
		isrc := src.Split(d.String())
		if !isrc.Bool(cfg.ItemCoverage) {
			return
		}
		pred := w.Ont.Predicate(d.Predicate)

		if isrc.Bool(cfg.WrongValueRate) {
			avoid := map[kb.Object]bool{}
			for _, o := range objs {
				avoid[o] = true
			}
			wrong := w.WrongValue(isrc, d.Predicate, avoid)
			// Only store values that are genuinely false (ancestors of a
			// true hierarchical value would merely be general, not wrong).
			if !wrong.IsZero() && !avoid[wrong] && !w.IsTrue(d.WithObject(wrong)) {
				snap.Store.Add(d.WithObject(wrong))
				snap.WrongItems[d] = true
				return
			}
		}

		for vi, o := range objs {
			// Non-functional items keep each value with ValueCoverage;
			// the first value is always kept so the item exists.
			if pred != nil && !pred.Functional && vi > 0 && !isrc.Bool(cfg.ValueCoverage) {
				continue
			}
			stored := o
			if pred != nil && pred.Hierarchical && isrc.Bool(cfg.GeneralValueRate) {
				if base, ok := o.Entity(); ok {
					if anc := w.Hier.Ancestors(base); len(anc) > 0 {
						stored = kb.EntityObject(anc[isrc.Intn(len(anc))])
						snap.Generalized[d] = true
					}
				}
			}
			snap.Store.Add(d.WithObject(stored))
		}
	})
	return snap
}

// HasItem reports whether the snapshot knows the data item at all — the
// LCWA precondition for labeling.
func (s *Snapshot) HasItem(d kb.DataItem) bool { return s.Store.HasItem(d) }

// Has reports whether the snapshot holds the exact triple.
func (s *Snapshot) Has(t kb.Triple) bool { return s.Store.Has(t) }
