// Package world generates the synthetic ground truth that stands in for the
// real world behind the paper's Web corpus: a typed ontology in Freebase
// style, entities with Zipf-skewed popularity, true facts (including
// multi-valued facts for non-functional predicates and hierarchical location
// values), confusable entity names for linkage errors, and an incomplete
// Freebase snapshot used to build the LCWA gold standard.
//
// Everything is generated from an explicit seed and is fully reproducible.
package world

import "fmt"

// Config controls world generation. The zero value is not usable; start from
// DefaultConfig (unit-test scale) or BenchConfig (benchmark scale) and adjust.
type Config struct {
	// Seed drives all randomness in the world.
	Seed int64

	// NumEntities is the number of non-location entities, distributed over
	// the type catalog with Zipf skew (Table 1: a few types hold most
	// entities, 30% of types have ≤100).
	NumEntities int

	// Location hierarchy sizes: continents → countries → states → cities.
	Continents        int
	CountriesPerCont  int
	StatesPerCountry  int
	CitiesPerState    int
	DuplicateCityRate float64 // fraction of cities that reuse another city's name ("Paris, Texas")

	// PredicatesPerType is the [min,max] number of predicates per type.
	PredicatesPerType [2]int

	// FunctionalFraction is the fraction of predicates that are functional
	// (Table 3 reports 28%).
	FunctionalFraction float64

	// MaxCardinality bounds the number of true values of a non-functional
	// data item (Figure 20: most items have 1-2 truths).
	MaxCardinality int

	// FactCoverage is the base probability that an (entity, predicate) pair
	// has facts in the world at all.
	FactCoverage float64

	// ConfusableFraction of entities receive a near-identical-name twin,
	// feeding the entity-linkage error simulator.
	ConfusableFraction float64

	// EntityZipfExponent skews both per-type entity counts and entity
	// popularity (popular entities appear on more pages and in Freebase).
	EntityZipfExponent float64

	// Freebase snapshot parameters; see BuildFreebase.
	Freebase FreebaseConfig
}

// FreebaseConfig controls how the incomplete trusted KB is carved out of the
// ground truth. The imperfections are deliberate: they create exactly the
// LCWA artifacts the paper's error analysis attributes 50% of false
// positives to (§4.4).
type FreebaseConfig struct {
	// HeadEntityCoverage and TailEntityCoverage are inclusion probabilities
	// for the most and least popular entities; intermediate ranks
	// interpolate linearly. "For tail entities, many facts are missing."
	HeadEntityCoverage float64
	TailEntityCoverage float64

	// ItemCoverage is the probability that a covered entity's data item is
	// present in the snapshot.
	ItemCoverage float64

	// ValueCoverage is the per-value inclusion probability for
	// non-functional items (at least one value is always kept), creating
	// the "multiple truths missing from Freebase" false positives.
	ValueCoverage float64

	// GeneralValueRate replaces a hierarchical value with one of its
	// ancestors (Freebase knows "USA" where the world says "New York City"),
	// creating specific-value false positives.
	GeneralValueRate float64

	// WrongValueRate stores an outright wrong value (the paper found 1 of
	// 20 sampled false positives was a Freebase error).
	WrongValueRate float64
}

// DefaultConfig returns a small world suitable for unit tests: a few hundred
// entities, a few thousand facts, sub-second generation.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:               seed,
		NumEntities:        800,
		Continents:         3,
		CountriesPerCont:   4,
		StatesPerCountry:   4,
		CitiesPerState:     5,
		DuplicateCityRate:  0.08,
		PredicatesPerType:  [2]int{4, 8},
		FunctionalFraction: 0.28,
		MaxCardinality:     6,
		FactCoverage:       0.55,
		ConfusableFraction: 0.12,
		EntityZipfExponent: 1.3,
		Freebase: FreebaseConfig{
			HeadEntityCoverage: 0.97,
			TailEntityCoverage: 0.75,
			ItemCoverage:       0.6,
			ValueCoverage:      0.7,
			GeneralValueRate:   0.12,
			WrongValueRate:     0.01,
		},
	}
}

// BenchConfig returns the world used by the paper-reproduction benchmarks:
// big enough for stable statistics (tens of thousands of facts), small enough
// to regenerate in a few seconds.
func BenchConfig(seed int64) Config {
	c := DefaultConfig(seed)
	c.NumEntities = 2200
	c.Continents = 4
	c.CountriesPerCont = 5
	c.StatesPerCountry = 5
	c.CitiesPerState = 6
	return c
}

// Validate reports configuration errors a generator run would trip over.
func (c Config) Validate() error {
	if c.NumEntities < 1 {
		return fmt.Errorf("world: NumEntities must be >= 1, got %d", c.NumEntities)
	}
	if c.Continents < 1 || c.CountriesPerCont < 1 || c.StatesPerCountry < 1 || c.CitiesPerState < 1 {
		return fmt.Errorf("world: location hierarchy sizes must all be >= 1")
	}
	if c.PredicatesPerType[0] < 1 || c.PredicatesPerType[1] < c.PredicatesPerType[0] {
		return fmt.Errorf("world: PredicatesPerType must satisfy 1 <= min <= max, got %v", c.PredicatesPerType)
	}
	if c.FunctionalFraction < 0 || c.FunctionalFraction > 1 {
		return fmt.Errorf("world: FunctionalFraction out of [0,1]: %v", c.FunctionalFraction)
	}
	if c.MaxCardinality < 1 {
		return fmt.Errorf("world: MaxCardinality must be >= 1, got %d", c.MaxCardinality)
	}
	if c.FactCoverage <= 0 || c.FactCoverage > 1 {
		return fmt.Errorf("world: FactCoverage out of (0,1]: %v", c.FactCoverage)
	}
	return nil
}
