package world

import (
	"strings"
	"testing"

	"kfusion/internal/kb"
	"kfusion/internal/randx"
)

func TestAllTruthTriplesAreTrue(t *testing.T) {
	w := testWorld(t, 20)
	for _, tr := range w.Truth.Triples() {
		if !w.IsTrue(tr) {
			t.Fatalf("ground-truth triple not true: %v", tr)
		}
	}
}

func TestWrongValueNeverZeroForKnownPredicates(t *testing.T) {
	w := testWorld(t, 21)
	src := randx.New(5)
	for _, pid := range w.Ont.Predicates() {
		for i := 0; i < 5; i++ {
			v := w.WrongValue(src, pid, nil)
			if v.IsZero() {
				t.Fatalf("WrongValue returned zero object for %s", pid)
			}
		}
	}
}

func TestWrongValueRespectsAvoid(t *testing.T) {
	w := testWorld(t, 22)
	src := randx.New(6)
	misses := 0
	for _, tr := range w.Truth.Triples()[:300] {
		avoid := map[kb.Object]bool{tr.Object: true}
		v := w.WrongValue(src, tr.Predicate, avoid)
		if avoid[v] {
			misses++ // the fabricated fallback may rarely collide
		}
	}
	if misses > 15 {
		t.Errorf("WrongValue returned avoided values %d/300 times", misses)
	}
}

func TestPopularityWeightsMonotone(t *testing.T) {
	w := testWorld(t, 23)
	rank := w.PopularityRank()
	for i := 1; i < len(rank); i++ {
		if w.Popularity(rank[i-1]) < w.Popularity(rank[i]) {
			t.Fatalf("popularity not monotone at rank %d", i)
		}
	}
	if w.Popularity("/m/does-not-exist") != 0 {
		t.Error("unknown entity has popularity")
	}
}

func TestEntityNamesNonEmptyAndTyped(t *testing.T) {
	w := testWorld(t, 24)
	for _, id := range w.Ont.Entities() {
		e := w.Ont.Entity(id)
		if e.Name == "" {
			t.Fatalf("entity %s has empty name", id)
		}
		if len(e.Types) == 0 {
			t.Fatalf("entity %s has no types", id)
		}
		for _, ty := range e.Types {
			if w.Ont.Type(ty) == nil {
				t.Fatalf("entity %s has unregistered type %s", id, ty)
			}
		}
	}
}

func TestPredicatesWellFormed(t *testing.T) {
	w := testWorld(t, 25)
	for _, pid := range w.Ont.Predicates() {
		p := w.Ont.Predicate(pid)
		if p.SubjectType == "" || w.Ont.Type(p.SubjectType) == nil {
			t.Fatalf("predicate %s has bad subject type %q", pid, p.SubjectType)
		}
		if p.Functional && p.Cardinality != 1 {
			t.Fatalf("functional predicate %s with cardinality %v", pid, p.Cardinality)
		}
		if !p.Functional && p.Cardinality <= 1 {
			t.Fatalf("non-functional predicate %s with cardinality %v", pid, p.Cardinality)
		}
		if p.Hierarchical && p.ObjectType != LocationType {
			t.Fatalf("hierarchical predicate %s with object type %s", pid, p.ObjectType)
		}
	}
}

func TestFactObjectsMatchPredicateDomain(t *testing.T) {
	w := testWorld(t, 26)
	for _, tr := range w.Truth.Triples() {
		p := w.Ont.Predicate(tr.Predicate)
		switch p.Domain {
		case kb.DomainEntity:
			if tr.Object.Kind != kb.KindEntity {
				t.Fatalf("entity predicate %s with %v object", tr.Predicate, tr.Object.Kind)
			}
		case kb.DomainNumber:
			if tr.Object.Kind != kb.KindNumber {
				t.Fatalf("number predicate %s with %v object", tr.Predicate, tr.Object.Kind)
			}
		case kb.DomainString:
			if tr.Object.Kind != kb.KindString {
				t.Fatalf("string predicate %s with %v object", tr.Predicate, tr.Object.Kind)
			}
		}
	}
}

func TestNameGenerators(t *testing.T) {
	g := nameGen{src: randx.New(9)}
	for i := 0; i < 50; i++ {
		if n := g.personName(); !strings.Contains(n, " ") {
			t.Fatalf("person name without space: %q", n)
		}
		base := g.personName()
		if v := g.personVariant(base); v == base {
			t.Fatalf("person variant identical to base: %q", v)
		}
		if n := g.placeName(); n == "" || n[0] < 'A' || n[0] > 'Z' {
			t.Fatalf("bad place name: %q", n)
		}
		if n := g.orgName(); !strings.Contains(n, " ") {
			t.Fatalf("org name without suffix: %q", n)
		}
		title := g.titleName()
		if title == "" {
			t.Fatal("empty title")
		}
		if v := g.titleVariant(title); v == title {
			t.Fatalf("title variant identical: %q", v)
		}
	}
	date := g.stringValue("birth_date")
	parts := strings.Split(date, "/")
	if len(parts) != 3 {
		t.Errorf("date value %q not m/d/y", date)
	}
	if g.stringValue("genre") == "" || g.stringValue("language") == "" || g.stringValue("currency") == "" {
		t.Error("empty enum string value")
	}
}

func TestMintNumberRanges(t *testing.T) {
	src := randx.New(10)
	for i := 0; i < 200; i++ {
		if y := mintNumber(src, "/a/b/founded_year"); y < 1900 || y > 2025 {
			t.Fatalf("year out of range: %v", y)
		}
		if p := mintNumber(src, "/a/b/population"); p < 0 {
			t.Fatalf("negative population: %v", p)
		}
	}
}

func TestSnapshotGeneralizedStillTrue(t *testing.T) {
	w := testWorld(t, 27)
	fb := BuildFreebase(w)
	for item := range fb.Generalized {
		for _, obj := range fb.Store.Objects(item) {
			if !w.IsTrue(item.WithObject(obj)) && !fb.WrongItems[item] {
				t.Fatalf("generalized snapshot value is false: %v %v", item, obj)
			}
		}
	}
	if len(fb.Generalized) == 0 {
		t.Skip("no generalized items at this seed")
	}
}
