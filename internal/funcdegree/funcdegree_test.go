package funcdegree

import (
	"math"
	"testing"

	"kfusion/internal/fusion"
	"kfusion/internal/kb"
)

func fused(subj, pred, obj string, prob float64) fusion.FusedTriple {
	return fusion.FusedTriple{
		Triple:      kb.Triple{Subject: kb.EntityID(subj), Predicate: kb.PredicateID(pred), Object: kb.StringObject(obj)},
		Probability: prob,
		Predicted:   true,
	}
}

func TestLearnDegrees(t *testing.T) {
	res := &fusion.Result{Triples: []fusion.FusedTriple{
		// Functional-looking: one dominant value per item.
		fused("a", "/p/func", "x", 0.9), fused("a", "/p/func", "y", 0.05),
		fused("b", "/p/func", "x", 0.85),
		// Multi-valued: two strong values per item.
		fused("a", "/p/multi", "x", 0.8), fused("a", "/p/multi", "y", 0.75),
		fused("b", "/p/multi", "x", 0.9), fused("b", "/p/multi", "y", 0.8), fused("b", "/p/multi", "z", 0.3),
	}}
	d := Learn(res, 10)
	if d.Degree("/p/func") > 1.2 {
		t.Errorf("functional predicate degree = %.2f, want ~1", d.Degree("/p/func"))
	}
	if d.Degree("/p/multi") < 1.5 {
		t.Errorf("multi-valued predicate degree = %.2f, want > 1.5", d.Degree("/p/multi"))
	}
	if d.Degree("/p/unknown") != 1 {
		t.Errorf("unknown predicate degree = %.2f, want 1", d.Degree("/p/unknown"))
	}
	ranked := d.Ranked()
	if len(ranked) != 2 || ranked[0] != "/p/multi" {
		t.Errorf("Ranked = %v", ranked)
	}
}

func TestLearnClamps(t *testing.T) {
	res := &fusion.Result{Triples: []fusion.FusedTriple{
		fused("a", "/p/huge", "v1", 0.99), fused("a", "/p/huge", "v2", 0.99),
		fused("a", "/p/huge", "v3", 0.99), fused("a", "/p/huge", "v4", 0.99),
	}}
	d := Learn(res, 2)
	if got := d.Degree("/p/huge"); got != 2 {
		t.Errorf("degree not clamped to max: %.2f", got)
	}
	if got := Learn(res, 0.5).Degree("/p/huge"); got != 1 {
		t.Errorf("maxDegree<1 should clamp to 1, got %.2f", got)
	}
}

func TestLearnFromGold(t *testing.T) {
	res := &fusion.Result{Triples: []fusion.FusedTriple{
		fused("a", "/p/multi", "x", 0.5), fused("a", "/p/multi", "y", 0.5),
		fused("b", "/p/multi", "x", 0.5), fused("b", "/p/multi", "y", 0.5),
		fused("a", "/p/func", "x", 0.5), fused("a", "/p/func", "y", 0.5),
	}}
	label := func(tr kb.Triple) (bool, bool) {
		if tr.Predicate == "/p/multi" {
			return true, true // every extracted value is true → degree 2
		}
		return tr.Object.Str == "x", true // single truth
	}
	d := LearnFromGold(res, label, 10)
	if got := d.Degree("/p/multi"); math.Abs(got-2) > 1e-9 {
		t.Errorf("gold degree multi = %.2f, want 2", got)
	}
	if got := d.Degree("/p/func"); math.Abs(got-1) > 1e-9 {
		t.Errorf("gold degree func = %.2f, want 1", got)
	}
}

func TestRescale(t *testing.T) {
	res := &fusion.Result{Triples: []fusion.FusedTriple{
		fused("a", "/p/multi", "x", 0.5),
		fused("a", "/p/func", "x", 0.5),
		{Triple: kb.Triple{Subject: "a", Predicate: "/p/multi", Object: kb.StringObject("unpred")}, Probability: -1},
	}}
	d := Degrees{"/p/multi": 2, "/p/func": 1}
	out := Rescale(res, d)

	// 1-(1-0.5)^2 = 0.75 for the multi-valued predicate.
	if got := out.Triples[0].Probability; math.Abs(got-0.75) > 1e-9 {
		t.Errorf("rescaled multi = %v, want 0.75", got)
	}
	// Functional predicate untouched.
	if got := out.Triples[1].Probability; got != 0.5 {
		t.Errorf("functional rescaled to %v", got)
	}
	// Unpredicted rows untouched.
	if out.Triples[2].Probability != -1 {
		t.Error("unpredicted row was rescaled")
	}
	// Original not mutated.
	if res.Triples[0].Probability != 0.5 {
		t.Error("Rescale mutated its input")
	}
}

func TestRescaleMonotoneAndBounded(t *testing.T) {
	d := Degrees{"/p/m": 3}
	prev := -1.0
	for p := 0.0; p <= 1.0; p += 0.05 {
		res := &fusion.Result{Triples: []fusion.FusedTriple{fused("a", "/p/m", "x", p)}}
		got := Rescale(res, d).Triples[0].Probability
		if got < prev {
			t.Fatalf("rescale not monotone at p=%.2f", p)
		}
		if got < 0 || got > 0.995 {
			t.Fatalf("rescale out of bounds: %v", got)
		}
		prev = got
	}
}
