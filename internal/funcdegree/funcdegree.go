// Package funcdegree implements the paper's §5.3 suggestion to "learn the
// degree of functionality for each predicate (i.e., the expected number of
// values), and to leverage this when performing fusion": most people have a
// single spouse, but actors appear in many films — the spouse predicate is
// nearly functional, acted-in is highly non-functional.
//
// Learn estimates the degree from a fusion result (no labels needed: the
// expected number of truths per data item is the sum of the fused
// probabilities). Rescale then relaxes the single-truth assumption: a
// probability p under the single-truth model estimates "t is THE truth"; if
// a predicate admits d truths, the probability that t is A truth is
// approximately 1-(1-p)^d.
package funcdegree

import (
	"math"
	"sort"

	"kfusion/internal/fusion"
	"kfusion/internal/kb"
)

// Degrees maps predicates to their learned functionality degree (expected
// number of true values per data item; 1 = functional).
type Degrees map[kb.PredicateID]float64

// Learn estimates per-predicate functionality degrees from a fusion result.
// Items whose probabilities were not predicted are skipped. Degrees are
// clamped to [1, maxDegree].
func Learn(res *fusion.Result, maxDegree float64) Degrees {
	if maxDegree < 1 {
		maxDegree = 1
	}
	sums := map[kb.DataItem]float64{}
	for _, f := range res.Triples {
		if f.Predicted {
			sums[f.Item()] += f.Probability
		}
	}
	totals := map[kb.PredicateID]float64{}
	counts := map[kb.PredicateID]int{}
	for item, s := range sums {
		totals[item.Predicate] += s
		counts[item.Predicate]++
	}
	out := make(Degrees, len(totals))
	for p, total := range totals {
		d := total / float64(counts[p])
		if d < 1 {
			d = 1
		}
		if d > maxDegree {
			d = maxDegree
		}
		out[p] = d
	}
	return out
}

// LearnFromGold estimates degrees from labeled data instead: the mean number
// of gold-true extracted values per item, per predicate. It is the
// supervised counterpart used when a gold standard is available.
func LearnFromGold(res *fusion.Result, label func(kb.Triple) (bool, bool), maxDegree float64) Degrees {
	if maxDegree < 1 {
		maxDegree = 1
	}
	truths := map[kb.DataItem]int{}
	seenItem := map[kb.DataItem]bool{}
	for _, f := range res.Triples {
		l, ok := label(f.Triple)
		if !ok {
			continue
		}
		seenItem[f.Item()] = true
		if l {
			truths[f.Item()]++
		}
	}
	totals := map[kb.PredicateID]float64{}
	counts := map[kb.PredicateID]int{}
	for item := range seenItem {
		totals[item.Predicate] += float64(truths[item])
		counts[item.Predicate]++
	}
	out := make(Degrees, len(totals))
	for p, total := range totals {
		d := total / float64(counts[p])
		if d < 1 {
			d = 1
		}
		if d > maxDegree {
			d = maxDegree
		}
		out[p] = d
	}
	return out
}

// Degree returns the learned degree for p (1 when unknown).
func (d Degrees) Degree(p kb.PredicateID) float64 {
	if v, ok := d[p]; ok {
		return v
	}
	return 1
}

// Rescale returns a copy of res with probabilities relaxed by the learned
// functionality degrees: p' = 1-(1-p)^d. Functional predicates (d=1) are
// unchanged; the probabilities of plausible secondary values of highly
// non-functional predicates rise, addressing the paper's dominant
// false-negative class (Figure 17: 65% "multiple truths").
func Rescale(res *fusion.Result, degrees Degrees) *fusion.Result {
	out := &fusion.Result{
		Rounds:       res.Rounds,
		ProvAccuracy: res.ProvAccuracy,
		Unpredicted:  res.Unpredicted,
		Triples:      make([]fusion.FusedTriple, len(res.Triples)),
	}
	for i, f := range res.Triples {
		if f.Predicted {
			d := degrees.Degree(f.Triple.Predicate)
			if d > 1 {
				p := 1 - math.Pow(1-f.Probability, d)
				if p > 0.995 {
					p = 0.995
				}
				f.Probability = p
			}
		}
		out.Triples[i] = f
	}
	return out
}

// Ranked returns predicates sorted by descending learned degree — a
// diagnostic for inspecting which predicates the model considers
// multi-valued.
func (d Degrees) Ranked() []kb.PredicateID {
	out := make([]kb.PredicateID, 0, len(d))
	for p := range d {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if d[out[i]] != d[out[j]] {
			return d[out[i]] > d[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}
