// Package wire is the little-endian binary codec shared by the snapshot
// serializers (fusion, extract, twolayer) and the durable generation store
// (internal/genstore). It exists so every on-disk encoding in the repository
// speaks one dialect: uvarint lengths, fixed-width little-endian scalars,
// and length-prefixed bulk slices written as raw memory-order bytes.
//
// The Writer latches its first error and counts bytes, mirroring kbstore's
// countingWriter; the Reader decodes from an in-memory buffer and is safe on
// adversarial input — every length is bounds-checked against the remaining
// bytes BEFORE any allocation, so a corrupt or fuzzed length field fails
// with ErrTruncated instead of attempting a multi-gigabyte make.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrTruncated reports a read past the end of the buffer — the unified
// failure for truncated files, corrupt length fields and malformed varints.
var ErrTruncated = errors.New("wire: truncated input")

// Writer encodes values into an io.Writer, latching the first error and
// counting bytes written (successful bytes only).
type Writer struct {
	w   io.Writer
	n   int64
	err error
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Err returns the first write error, if any.
func (w *Writer) Err() error { return w.err }

// Len returns the number of bytes successfully written.
func (w *Writer) Len() int64 { return w.n }

func (w *Writer) write(b []byte) {
	if w.err != nil {
		return
	}
	n, err := w.w.Write(b)
	w.n += int64(n)
	w.err = err
}

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.write([]byte{v}) }

// U32 writes a fixed-width little-endian uint32.
func (w *Writer) U32(v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	w.write(buf[:])
}

// U64 writes a fixed-width little-endian uint64.
func (w *Writer) U64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	w.write(buf[:])
}

// Uvarint writes a varint-encoded unsigned integer.
func (w *Writer) Uvarint(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.write(buf[:n])
}

// Int asserts v is non-negative and writes it as a uvarint.
func (w *Writer) Int(v int) {
	if v < 0 {
		if w.err == nil {
			w.err = fmt.Errorf("wire: negative length %d", v)
		}
		return
	}
	w.Uvarint(uint64(v))
}

// Bool writes a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// F64 writes a float64 as its IEEE-754 bits.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.write([]byte(s))
}

// Bytes writes raw bytes with no prefix.
func (w *Writer) Bytes(b []byte) { w.write(b) }

// Strings writes a length-prefixed slice of length-prefixed strings.
func (w *Writer) Strings(s []string) {
	w.Int(len(s))
	for _, v := range s {
		w.String(v)
	}
}

// Int32s writes a length-prefixed []int32 as raw little-endian words.
func (w *Writer) Int32s(s []int32) {
	w.Int(len(s))
	if w.err != nil {
		return
	}
	buf := make([]byte, 4*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
	}
	w.write(buf)
}

// F64s writes a length-prefixed []float64 as raw little-endian bit patterns.
func (w *Writer) F64s(s []float64) {
	w.Int(len(s))
	if w.err != nil {
		return
	}
	buf := make([]byte, 8*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	w.write(buf)
}

// Bools writes a length-prefixed []bool, one byte per element.
func (w *Writer) Bools(s []bool) {
	w.Int(len(s))
	if w.err != nil {
		return
	}
	buf := make([]byte, len(s))
	for i, v := range s {
		if v {
			buf[i] = 1
		}
	}
	w.write(buf)
}

// CheckIDs validates that every element of ids lies in [0, n) — the decode-
// side guard that keeps a corrupt but well-framed ID table from indexing out
// of bounds later.
func CheckIDs(name string, ids []int32, n int) error {
	for i, v := range ids {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("wire: %s[%d] = %d out of range [0,%d)", name, i, v, n)
		}
	}
	return nil
}

// CheckCSR validates a CSR span table: len(start) == nGroups+1, start[0] == 0,
// offsets non-decreasing, and the final offset equal to flatLen.
func CheckCSR(name string, start []int32, nGroups, flatLen int) error {
	if nGroups == 0 && flatLen == 0 && len(start) == 0 {
		return nil // empty table round-trips as nil
	}
	if len(start) != nGroups+1 {
		return fmt.Errorf("wire: %s has %d offsets, want %d", name, len(start), nGroups+1)
	}
	if start[0] != 0 {
		return fmt.Errorf("wire: %s[0] = %d, want 0", name, start[0])
	}
	for i := 1; i < len(start); i++ {
		if start[i] < start[i-1] {
			return fmt.Errorf("wire: %s[%d] = %d decreases from %d", name, i, start[i], start[i-1])
		}
	}
	if int(start[nGroups]) != flatLen {
		return fmt.Errorf("wire: %s ends at %d, want %d", name, start[nGroups], flatLen)
	}
	return nil
}

// Reader decodes values from a byte slice, latching the first error. All
// length prefixes are validated against the remaining input before any
// allocation or slicing happens.
type Reader struct {
	data []byte
	pos  int
	err  error
}

// NewReader returns a Reader over data.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Pos returns the current decode offset.
func (r *Reader) Pos() int { return r.pos }

// Remaining reports the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.data) - r.pos }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w at offset %d", ErrTruncated, r.pos)
	}
}

// take returns the next n bytes, or nil after latching ErrTruncated. n is
// validated as a uint64 so corrupt 2^63-scale lengths cannot overflow the
// bounds check.
func (r *Reader) take(n uint64) []byte {
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.data)-r.pos) {
		r.fail()
		return nil
	}
	b := r.data[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a fixed-width little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a fixed-width little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Uvarint reads a varint-encoded unsigned integer.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return v
}

// Int reads a uvarint and validates it fits in a non-negative int.
func (r *Reader) Int() int {
	v := r.Uvarint()
	if r.err == nil && v > math.MaxInt32 {
		// Every slice this codec length-prefixes is bounded by the int32 ID
		// spaces of the compiled graphs; anything larger is corruption.
		r.fail()
		return 0
	}
	return int(v)
}

// Bool reads a boolean byte.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// F64 reads a float64 from its IEEE-754 bits.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Uvarint()
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Strings reads a length-prefixed slice of strings. A nil slice round-trips
// as nil.
func (r *Reader) Strings() []string {
	n := r.Int()
	if r.err != nil || n == 0 {
		return nil
	}
	// Each element costs at least one length byte, so n is bounded by the
	// remaining input — checked before allocating.
	if n > r.Remaining() {
		r.fail()
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.String()
		if r.err != nil {
			return nil
		}
	}
	return out
}

// Int32s reads a length-prefixed []int32.
func (r *Reader) Int32s() []int32 {
	n := r.Int()
	if r.err != nil || n == 0 {
		return nil
	}
	b := r.take(uint64(n) * 4)
	if b == nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// F64s reads a length-prefixed []float64.
func (r *Reader) F64s() []float64 {
	n := r.Int()
	if r.err != nil || n == 0 {
		return nil
	}
	b := r.take(uint64(n) * 8)
	if b == nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// Bools reads a length-prefixed []bool.
func (r *Reader) Bools() []bool {
	n := r.Int()
	if r.err != nil || n == 0 {
		return nil
	}
	b := r.take(uint64(n))
	if b == nil {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = b[i] != 0
	}
	return out
}
