package wire

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U8(7)
	w.U32(0xdeadbeef)
	w.U64(1 << 62)
	w.Uvarint(300)
	w.Int(42)
	w.Bool(true)
	w.Bool(false)
	w.F64(math.Pi)
	w.String("hello")
	w.String("")
	w.Strings([]string{"a", "bb", ""})
	w.Int32s([]int32{-1, 0, 1 << 30})
	w.F64s([]float64{0, -1.5, math.Inf(1)})
	w.Bools([]bool{true, false, true})
	if err := w.Err(); err != nil {
		t.Fatalf("write: %v", err)
	}
	if w.Len() != int64(buf.Len()) {
		t.Fatalf("Len = %d, buffer has %d", w.Len(), buf.Len())
	}

	r := NewReader(buf.Bytes())
	if got := r.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 1<<62 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.Uvarint(); got != 300 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := r.Int(); got != 42 {
		t.Errorf("Int = %d", got)
	}
	if got := r.Bool(); !got {
		t.Errorf("Bool #1 = %v", got)
	}
	if got := r.Bool(); got {
		t.Errorf("Bool #2 = %v", got)
	}
	if got := r.F64(); got != math.Pi {
		t.Errorf("F64 = %v", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	if got := r.Strings(); len(got) != 3 || got[0] != "a" || got[1] != "bb" || got[2] != "" {
		t.Errorf("Strings = %v", got)
	}
	if got := r.Int32s(); len(got) != 3 || got[0] != -1 || got[1] != 0 || got[2] != 1<<30 {
		t.Errorf("Int32s = %v", got)
	}
	if got := r.F64s(); len(got) != 3 || got[0] != 0 || got[1] != -1.5 || !math.IsInf(got[2], 1) {
		t.Errorf("F64s = %v", got)
	}
	if got := r.Bools(); len(got) != 3 || !got[0] || got[1] || !got[2] {
		t.Errorf("Bools = %v", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("read: %v", err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bytes left over", r.Remaining())
	}
}

func TestTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Int32s(make([]int32, 100))
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		r.Int32s()
		if !errors.Is(r.Err(), ErrTruncated) {
			t.Fatalf("cut=%d: err = %v, want ErrTruncated", cut, r.Err())
		}
	}
}

// TestHugeLength checks that a corrupt length field fails cleanly instead of
// allocating or mis-slicing.
func TestHugeLength(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uvarint(math.MaxUint64) // claimed length, no payload
	data := buf.Bytes()

	for name, read := range map[string]func(*Reader){
		"String": func(r *Reader) { _ = r.String() },
		"Int32s": func(r *Reader) { r.Int32s() },
		"F64s":   func(r *Reader) { r.F64s() },
		"Bools":  func(r *Reader) { r.Bools() },
		"Strings": func(r *Reader) {
			r.Strings()
		},
	} {
		r := NewReader(data)
		read(r)
		if !errors.Is(r.Err(), ErrTruncated) {
			t.Errorf("%s: err = %v, want ErrTruncated", name, r.Err())
		}
	}
}

func TestNegativeLength(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	w.Int(-1)
	if w.Err() == nil {
		t.Fatal("want error for negative length")
	}
}

func TestErrorLatch(t *testing.T) {
	r := NewReader([]byte{1})
	r.U32() // fails
	first := r.Err()
	if first == nil {
		t.Fatal("want error")
	}
	r.U8() // would succeed on fresh reader, must stay failed
	if r.Err() != first {
		t.Fatal("error not latched")
	}
}
