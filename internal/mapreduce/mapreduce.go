// Package mapreduce is a small, deterministic, in-process MapReduce engine.
// The paper scales knowledge fusion with a three-stage MapReduce pipeline
// (Figure 8); this package provides the substrate: parallel map over input
// chunks, hash partitioning, grouped reduce, and an iteration driver with a
// convergence test and a forced round cap (the paper's R).
//
// Determinism: for a fixed input order, worker count does not affect the
// output. Mapper emissions are buffered per input chunk and merged in chunk
// order; within a partition, keys are reduced in first-emission order; the
// final output concatenates partitions in index order.
package mapreduce

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Job describes one MapReduce job. I is the input record type, K the
// intermediate key, V the intermediate value, O the output record type.
type Job[I any, K comparable, V any, O any] struct {
	// Name appears in error messages and counters.
	Name string

	// Map consumes one input record and emits zero or more key/value
	// pairs. It must be safe to call concurrently on distinct records.
	Map func(in I, emit func(K, V))

	// Reduce consumes one key with all its values and emits zero or more
	// outputs. It must be safe to call concurrently on distinct keys.
	Reduce func(key K, values []V, emit func(O))

	// KeyHash places keys into partitions. It must be deterministic.
	KeyHash func(K) uint64

	// Partitions is the number of reduce partitions (default 32).
	Partitions int

	// Workers is the parallelism for both phases (default GOMAXPROCS).
	Workers int

	// EmitsPerInput, when > 0, declares the expected number of Map
	// emissions per input record. It is a pure optimization hint: emission
	// buffers are pre-sized to chunkSize·EmitsPerInput/Partitions instead
	// of growing from empty, cutting append churn on high-volume jobs. It
	// never affects results.
	EmitsPerInput int
}

// Counters collects named counters across a run.
type Counters struct {
	mu sync.Mutex
	m  map[string]*int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{m: make(map[string]*int64)} }

// Add increments the named counter by delta. Safe for concurrent use.
func (c *Counters) Add(name string, delta int64) {
	c.mu.Lock()
	p, ok := c.m[name]
	if !ok {
		p = new(int64)
		c.m[name] = p
	}
	c.mu.Unlock()
	atomic.AddInt64(p, delta)
}

// Get returns the named counter's value.
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.m[name]; ok {
		return atomic.LoadInt64(p)
	}
	return 0
}

type pair[K comparable, V any] struct {
	key K
	val V
}

// Run executes the job over inputs and returns the concatenated reducer
// outputs in deterministic order.
func Run[I any, K comparable, V any, O any](job Job[I, K, V, O], inputs []I) ([]O, error) {
	if job.Map == nil || job.Reduce == nil {
		return nil, fmt.Errorf("mapreduce: job %q needs both Map and Reduce", job.Name)
	}
	if job.KeyHash == nil {
		return nil, fmt.Errorf("mapreduce: job %q needs KeyHash", job.Name)
	}
	parts := job.Partitions
	if parts <= 0 {
		parts = 32
	}
	workers := job.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// ---- Map phase ----
	// Inputs are cut into fixed chunks; each chunk's emissions are buffered
	// per partition. Chunks are processed by a worker pool but merged in
	// chunk order, so the result is independent of scheduling.
	chunkSize := (len(inputs) + workers*4 - 1) / (workers * 4)
	if chunkSize < 1 {
		chunkSize = 1
	}
	nChunks := (len(inputs) + chunkSize - 1) / chunkSize
	chunkBufs := make([][][]pair[K, V], nChunks) // [chunk][partition][]pair

	var wg sync.WaitGroup
	chunkCh := make(chan int)
	panics := make(chan any, workers)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Recover per chunk so a panicking Map never stops the worker
			// from draining its channel (which would deadlock the sender).
			for ci := range chunkCh {
				func() {
					defer func() {
						if r := recover(); r != nil {
							select {
							case panics <- r:
							default:
							}
						}
					}()
					bufs := make([][]pair[K, V], parts)
					lo := ci * chunkSize
					hi := lo + chunkSize
					if hi > len(inputs) {
						hi = len(inputs)
					}
					if job.EmitsPerInput > 0 {
						per := (hi-lo)*job.EmitsPerInput/parts + 1
						for p := range bufs {
							bufs[p] = make([]pair[K, V], 0, per)
						}
					}
					emit := func(k K, v V) {
						p := int(job.KeyHash(k) % uint64(parts))
						bufs[p] = append(bufs[p], pair[K, V]{key: k, val: v})
					}
					for i := lo; i < hi; i++ {
						job.Map(inputs[i], emit)
					}
					chunkBufs[ci] = bufs
				}()
			}
		}()
	}
	for ci := 0; ci < nChunks; ci++ {
		chunkCh <- ci
	}
	close(chunkCh)
	wg.Wait()
	select {
	case r := <-panics:
		return nil, fmt.Errorf("mapreduce: job %q map phase panicked: %v", job.Name, r)
	default:
	}

	// ---- Shuffle ----
	// Group each partition by key, preserving first-emission order across
	// chunk-ordered merges.
	type group struct {
		keys   []K
		values map[K][]V
	}
	groups := make([]group, parts)
	var sg sync.WaitGroup
	partCh := make(chan int)
	for wk := 0; wk < workers; wk++ {
		sg.Add(1)
		go func() {
			defer sg.Done()
			for p := range partCh {
				// Pre-size the shuffle from the known pair volume: the key
				// count is bounded by it, so the map and key list never
				// rehash or regrow while merging.
				total := 0
				for ci := 0; ci < nChunks; ci++ {
					if chunkBufs[ci] != nil {
						total += len(chunkBufs[ci][p])
					}
				}
				if total == 0 {
					continue
				}
				g := group{
					keys:   make([]K, 0, total),
					values: make(map[K][]V, total),
				}
				for ci := 0; ci < nChunks; ci++ {
					if chunkBufs[ci] == nil {
						continue
					}
					for _, kv := range chunkBufs[ci][p] {
						if _, ok := g.values[kv.key]; !ok {
							g.keys = append(g.keys, kv.key)
						}
						g.values[kv.key] = append(g.values[kv.key], kv.val)
					}
				}
				groups[p] = g
			}
		}()
	}
	for p := 0; p < parts; p++ {
		partCh <- p
	}
	close(partCh)
	sg.Wait()

	// ---- Reduce phase ----
	outBufs := make([][]O, parts)
	var rg sync.WaitGroup
	redCh := make(chan int)
	for wk := 0; wk < workers; wk++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			// Recover per partition so a panicking Reduce keeps the worker
			// draining (see the map phase).
			for p := range redCh {
				func() {
					defer func() {
						if r := recover(); r != nil {
							select {
							case panics <- r:
							default:
							}
						}
					}()
					var out []O
					emit := func(o O) { out = append(out, o) }
					for _, k := range groups[p].keys {
						job.Reduce(k, groups[p].values[k], emit)
					}
					outBufs[p] = out
				}()
			}
		}()
	}
	for p := 0; p < parts; p++ {
		redCh <- p
	}
	close(redCh)
	rg.Wait()
	select {
	case r := <-panics:
		return nil, fmt.Errorf("mapreduce: job %q reduce phase panicked: %v", job.Name, r)
	default:
	}

	total := 0
	for p := 0; p < parts; p++ {
		total += len(outBufs[p])
	}
	out := make([]O, 0, total)
	for p := 0; p < parts; p++ {
		out = append(out, outBufs[p]...)
	}
	return out, nil
}

// MustRun is Run that panics on configuration errors; for pipelines whose
// jobs are statically well-formed.
func MustRun[I any, K comparable, V any, O any](job Job[I, K, V, O], inputs []I) []O {
	out, err := Run(job, inputs)
	if err != nil {
		panic(err)
	}
	return out
}

// Iterate drives an iterative computation: it calls round with the current
// state and round index (0-based) until round reports convergence or
// maxRounds rounds have run — the paper forces termination after R rounds.
// It returns the final state and the number of rounds executed.
func Iterate[S any](state S, maxRounds int, round func(S, int) (S, bool)) (S, int) {
	rounds := 0
	for rounds < maxRounds {
		next, done := round(state, rounds)
		state = next
		rounds++
		if done {
			break
		}
	}
	return state, rounds
}

// StringHash is a ready-made KeyHash for string keys (FNV-1a).
func StringHash(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
