package mapreduce

import (
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"unicode"
	"unicode/utf8"
)

func wordCountJob(workers, partitions int) Job[string, string, int, [2]any] {
	return Job[string, string, int, [2]any]{
		Name: "wordcount",
		Map: func(line string, emit func(string, int)) {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
		},
		Reduce: func(k string, vs []int, emit func([2]any)) {
			total := 0
			for _, v := range vs {
				total += v
			}
			emit([2]any{k, total})
		},
		KeyHash:    StringHash,
		Workers:    workers,
		Partitions: partitions,
	}
}

var corpus = []string{
	"the quick brown fox",
	"the lazy dog",
	"the quick dog jumps",
	"a fox and a dog",
}

func TestWordCount(t *testing.T) {
	out, err := Run(wordCountJob(4, 8), corpus)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, o := range out {
		counts[o[0].(string)] = o[1].(int)
	}
	want := map[string]int{"the": 3, "quick": 2, "dog": 3, "fox": 2, "a": 2, "lazy": 1, "brown": 1, "jumps": 1, "and": 1}
	if len(counts) != len(want) {
		t.Fatalf("got %d distinct words, want %d: %v", len(counts), len(want), counts)
	}
	for w, n := range want {
		if counts[w] != n {
			t.Errorf("count[%q] = %d, want %d", w, counts[w], n)
		}
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	ref, err := Run(wordCountJob(1, 16), corpus)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := Run(wordCountJob(workers, 16), corpus)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d outputs, want %d", workers, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: output %d = %v, want %v (ordering not deterministic)", workers, i, got[i], ref[i])
			}
		}
	}
}

func TestEquivalentToSequentialGrouping(t *testing.T) {
	f := func(words []string) bool {
		if len(words) > 200 {
			words = words[:200]
		}
		lines := make([]string, 0, len(words))
		for _, w := range words {
			// The wordcount mapper splits on any Unicode whitespace; keep
			// only single-token inputs so the sequential count matches.
			if w == "" || strings.IndexFunc(w, unicode.IsSpace) >= 0 || !utf8.ValidString(w) {
				continue
			}
			lines = append(lines, w)
		}
		out, err := Run(wordCountJob(4, 8), lines)
		if err != nil {
			return false
		}
		seq := map[string]int{}
		for _, l := range lines {
			seq[l]++
		}
		if len(out) != len(seq) {
			return false
		}
		for _, o := range out {
			if seq[o[0].(string)] != o[1].(int) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEmptyInput(t *testing.T) {
	out, err := Run(wordCountJob(4, 8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("empty input produced %d outputs", len(out))
	}
}

func TestConfigErrors(t *testing.T) {
	j := wordCountJob(1, 1)
	j.Map = nil
	if _, err := Run(j, corpus); err == nil {
		t.Error("accepted job without Map")
	}
	j = wordCountJob(1, 1)
	j.KeyHash = nil
	if _, err := Run(j, corpus); err == nil {
		t.Error("accepted job without KeyHash")
	}
}

func TestMapPanicSurfacesAsError(t *testing.T) {
	j := wordCountJob(2, 4)
	j.Map = func(line string, emit func(string, int)) { panic("boom") }
	if _, err := Run(j, corpus); err == nil || !strings.Contains(err.Error(), "map phase panicked") {
		t.Errorf("map panic not surfaced: %v", err)
	}
}

func TestReducePanicSurfacesAsError(t *testing.T) {
	j := wordCountJob(2, 4)
	j.Reduce = func(k string, vs []int, emit func([2]any)) { panic("boom") }
	if _, err := Run(j, corpus); err == nil || !strings.Contains(err.Error(), "reduce phase panicked") {
		t.Errorf("reduce panic not surfaced: %v", err)
	}
}

func TestValuesGroupedCompletely(t *testing.T) {
	// Each key must see all its values in one Reduce call.
	var calls int64
	j := Job[int, int, int, int]{
		Name: "group",
		Map:  func(in int, emit func(int, int)) { emit(in%7, in) },
		Reduce: func(k int, vs []int, emit func(int)) {
			atomic.AddInt64(&calls, 1)
			emit(len(vs))
		},
		KeyHash: func(k int) uint64 { return uint64(k) },
	}
	inputs := make([]int, 700)
	for i := range inputs {
		inputs[i] = i
	}
	out, err := Run(j, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 7 {
		t.Errorf("Reduce called %d times, want 7", calls)
	}
	for _, n := range out {
		if n != 100 {
			t.Errorf("group size %d, want 100", n)
		}
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				c.Add("x", 1)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if got := c.Get("x"); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := c.Get("missing"); got != 0 {
		t.Errorf("missing counter = %d, want 0", got)
	}
}

func TestIterate(t *testing.T) {
	state, rounds := Iterate(0, 10, func(s, r int) (int, bool) {
		return s + 1, s+1 >= 4
	})
	if state != 4 || rounds != 4 {
		t.Errorf("Iterate converged at state=%d rounds=%d, want 4/4", state, rounds)
	}
	state, rounds = Iterate(0, 3, func(s, r int) (int, bool) { return s + 1, false })
	if state != 3 || rounds != 3 {
		t.Errorf("Iterate forced stop at state=%d rounds=%d, want 3/3", state, rounds)
	}
	state, rounds = Iterate(42, 0, func(s, r int) (int, bool) { return s + 1, false })
	if state != 42 || rounds != 0 {
		t.Errorf("Iterate with maxRounds=0 ran: state=%d rounds=%d", state, rounds)
	}
}

func TestStringHashStable(t *testing.T) {
	if StringHash("abc") != StringHash("abc") {
		t.Error("StringHash not stable")
	}
	if StringHash("abc") == StringHash("abd") {
		t.Error("StringHash collides trivially")
	}
}

func TestLargeInputManyPartitions(t *testing.T) {
	inputs := make([]string, 5000)
	for i := range inputs {
		inputs[i] = strings.Repeat("w", 1+i%17)
	}
	out, err := Run(wordCountJob(8, 64), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 17 {
		t.Fatalf("distinct keys = %d, want 17", len(out))
	}
	total := 0
	for _, o := range out {
		total += o[1].(int)
	}
	if total != 5000 {
		t.Errorf("total count = %d, want 5000", total)
	}
}

func TestEmitsPerInputHintDoesNotChangeResults(t *testing.T) {
	inputs := make([]int, 5000)
	for i := range inputs {
		inputs[i] = i
	}
	job := Job[int, int, int, [2]int]{
		Name: "hinted",
		Map: func(in int, emit func(int, int)) {
			emit(in%97, 1)
			emit(in%89, 2)
		},
		Reduce: func(k int, vs []int, emit func([2]int)) {
			sum := 0
			for _, v := range vs {
				sum += v
			}
			emit([2]int{k, sum})
		},
		KeyHash: func(k int) uint64 { return uint64(k) * 0x9e3779b97f4a7c15 },
	}
	plain, err := Run(job, inputs)
	if err != nil {
		t.Fatal(err)
	}
	job.EmitsPerInput = 2
	hinted, err := Run(job, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(hinted) {
		t.Fatalf("hinted output size %d, want %d", len(hinted), len(plain))
	}
	for i := range plain {
		if plain[i] != hinted[i] {
			t.Fatalf("output %d differs: %v vs %v", i, hinted[i], plain[i])
		}
	}
}
