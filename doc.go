// Package kfusion is a from-scratch reproduction of "From Data Fusion to
// Knowledge Fusion" (Dong et al., PVLDB 7(10), 2014) — the Google Knowledge
// Vault line of work on estimating a calibrated probability of truth for
// every (subject, predicate, object) triple extracted from the Web by a
// fleet of information extractors.
//
// The package exposes four layers:
//
//   - Knowledge synthesis. Because the paper's corpus (1B+ Web pages, 12
//     proprietary extractors, Freebase) is not available, kfusion generates
//     a statistically faithful synthetic substitute: a typed ground-truth
//     world, a crawled Web corpus in four content forms (TXT, DOM, TBL,
//     ANO), twelve simulated extractors with the paper's three extraction
//     error classes, and an incomplete Freebase snapshot for the LCWA gold
//     standard. See Synthesize.
//
//   - Knowledge fusion. VOTE, ACCU and POPACCU adapted to the
//     three-dimensional (data item × source × extractor) input, with the
//     paper's refinements: provenance granularity, coverage and accuracy
//     filtering, and gold-standard accuracy initialization. See Fuse and
//     the preset constructors (VOTE, ACCU, POPACCU, POPACCUPlus...).
//
//   - Evaluation. Calibration curves with deviation and weighted deviation,
//     PR curves with AUC-PR, kappa correlation between extractors, and a
//     mechanical error analysis that attributes false positives/negatives
//     to the paper's Figure 17 categories. See Evaluate and AnalyzeErrors.
//
//   - Experiments. Every table and figure of the paper's evaluation section
//     can be regenerated; see the Experiments function, the cmd/kfbench
//     tool and the repository benchmarks.
//
// A minimal end-to-end run:
//
//	ds := kfusion.Synthesize(kfusion.ScaleSmall, 42)
//	res := ds.Fuse("popaccu+", kfusion.POPACCUPlus(ds.Gold.Labeler()))
//	rep := kfusion.Evaluate("POPACCU+", res, ds.Gold)
//	fmt.Printf("WDev=%.4f AUC-PR=%.4f\n", rep.WDev, rep.AUCPR)
package kfusion
